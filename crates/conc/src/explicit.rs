//! Explicit-state bounded-context-switch exploration: the concurrent
//! ground-truth oracle, schedule-constrained refinement, and the guided
//! step replayer.
//!
//! A full configuration — shared globals plus one call stack per thread —
//! is explored by BFS with a context-switch budget. Unlike the symbolic
//! engine this cannot handle unbounded recursion (stacks are materialized),
//! so a stack-depth limit turns runaway recursion into an error; the tests
//! use it on finite-stack programs only.
//!
//! Three progressively more constrained modes share one stepping function:
//!
//! 1. [`conc_explicit_reachable`] — free exploration, the differential
//!    oracle;
//! 2. [`conc_refine_schedule`] — exploration pinned to a fixed context-
//!    switch schedule (who runs each round, the shared globals at each
//!    hand-over), which *records* the statement-granular step sequence
//!    reaching the target — the refinement from a round-level witness to a
//!    concrete interleaved trace;
//! 3. [`conc_replay_guided`] — no exploration at all: a scripted step
//!    sequence is *followed* deterministically, one successor per step,
//!    each step checked against the concrete semantics and rejected on any
//!    disagreement in thread, pc, or valuation.

use crate::merge::Merged;
use getafix_boolprog::{
    admits, enumerate_choices, frame_mask, read_var, write_var, Bits, Edge, Pc, ProcId, ReplayStep,
    VarRef,
};
use getafix_mucalc::{LimitKind, ResourceLimits};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Errors from the explicit concurrent engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConcExplicitError {
    /// The state budget was exhausted.
    StateLimit(usize),
    /// A shared resource bound tripped ([`ConcLimits::resources`]):
    /// deadline, step budget, or an external cancellation. Carries the
    /// number of distinct configurations searched up to the trip, so the
    /// budget overrun is reported against the work actually done.
    ResourceLimit {
        /// Which bound tripped.
        kind: LimitKind,
        /// Distinct configurations visited when the limit fired.
        search_states: usize,
    },
    /// A stack exceeded the depth limit (recursion too deep to explore
    /// explicitly).
    StackLimit(usize),
    /// Frame too wide for the explicit engine.
    TooManyVariables(String),
    /// A replay schedule that is not even shaped like a schedule (empty,
    /// or naming a thread the program does not have).
    MalformedSchedule(String),
    /// A configuration that violates the engine's structural invariants —
    /// a frame whose pc lies outside its procedure, a return frame with no
    /// caller below it, an active thread out of range. These indicate a
    /// corrupted input, never a user program error.
    MalformedConfiguration(String),
    /// Guided replay rejected a scripted step: its thread, pc, or
    /// valuation disagrees with the engine's concrete semantics.
    ScriptRejected {
        /// Index of the offending step (`steps.len()` for end-of-script
        /// failures such as "final pc is not a target").
        step: usize,
        /// Human-readable reason.
        message: String,
    },
}

impl fmt::Display for ConcExplicitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcExplicitError::StateLimit(n) => write!(f, "state limit {n} exceeded"),
            ConcExplicitError::ResourceLimit { kind, search_states } => {
                write!(
                    f,
                    "resource limit exceeded ({kind}) after searching {search_states} \
                     configurations"
                )
            }
            ConcExplicitError::StackLimit(n) => write!(f, "stack depth limit {n} exceeded"),
            ConcExplicitError::TooManyVariables(m) => write!(f, "{m}"),
            ConcExplicitError::MalformedSchedule(m) => write!(f, "{m}"),
            ConcExplicitError::MalformedConfiguration(m) => {
                write!(f, "malformed configuration: {m}")
            }
            ConcExplicitError::ScriptRejected { step, message } => {
                write!(f, "guided replay rejected step {step}: {message}")
            }
        }
    }
}

impl std::error::Error for ConcExplicitError {}

/// Exploration limits.
#[derive(Debug, Clone)]
pub struct ConcLimits {
    /// Maximum distinct configurations.
    pub max_states: usize,
    /// Maximum call-stack depth per thread.
    pub max_stack: usize,
    /// Shared resource governance (deadline, step budget, cancel token):
    /// every BFS expansion accounts one step, so the same budget that
    /// bounds the symbolic solve also bounds the explicit search. Off by
    /// default.
    pub resources: ResourceLimits,
}

impl Default for ConcLimits {
    fn default() -> Self {
        ConcLimits { max_states: 2_000_000, max_stack: 12, resources: ResourceLimits::default() }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Frame {
    proc: ProcId,
    pc: Pc,
    locals: Bits,
    /// (return-value targets in the caller, resume pc) captured at call.
    on_return: Option<(Vec<VarRef>, Pc)>,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Config {
    switches_used: usize,
    active: usize,
    globals: Bits,
    stacks: Vec<Vec<Frame>>,
}

/// Explicit bounded-context-switch reachability of any pc in `targets`.
///
/// # Errors
///
/// See [`ConcExplicitError`].
pub fn conc_explicit_reachable(
    merged: &Merged,
    targets: &[Pc],
    switches: usize,
    limits: ConcLimits,
) -> Result<bool, ConcExplicitError> {
    let cfg = &merged.cfg;
    if cfg.globals.len() > 64 {
        return Err(ConcExplicitError::TooManyVariables(format!(
            "{} merged globals exceed 64",
            cfg.globals.len()
        )));
    }
    let target_set: BTreeSet<Pc> = targets.iter().copied().collect();
    let mut visited: BTreeSet<Config> = BTreeSet::new();
    let mut queue: VecDeque<Config> = VecDeque::new();

    // Thread 0..n-1 may each be the initially active thread? §5 fixes the
    // schedule vector t̄, including t0 — any thread may run first.
    for first in 0..merged.n_threads {
        let mut stacks: Vec<Vec<Frame>> = vec![Vec::new(); merged.n_threads];
        let entry = merged.thread_entries[first];
        let proc = cfg.proc_of(entry).id;
        stacks[first].push(Frame { proc, pc: entry, locals: 0, on_return: None });
        let c = Config { switches_used: 0, active: first, globals: 0, stacks };
        if visited.insert(c.clone()) {
            queue.push_back(c);
        }
    }

    while let Some(c) = queue.pop_front() {
        if visited.len() > limits.max_states {
            return Err(ConcExplicitError::StateLimit(limits.max_states));
        }
        // One governed step per expansion: deadline poll + step budget.
        limits.resources.note_steps(1).map_err(|kind| ConcExplicitError::ResourceLimit {
            kind,
            search_states: visited.len(),
        })?;
        // Target check: active thread's top frame.
        if let Some(top) = c.stacks[c.active].last() {
            if target_set.contains(&top.pc) {
                return Ok(true);
            }
        }
        let mut stepped: Vec<(Config, ReplayStep)> = Vec::new();
        step_active(merged, &c, limits.max_stack, &mut stepped)?;
        let mut successors: Vec<Config> = stepped.into_iter().map(|(c2, _)| c2).collect();
        // Context switches.
        if c.switches_used < switches {
            for next in 0..merged.n_threads {
                if next == c.active {
                    continue;
                }
                let mut c2 = c.clone();
                c2.switches_used += 1;
                c2.active = next;
                if c2.stacks[next].is_empty() {
                    // First activation: start at the thread's main.
                    let entry = merged.thread_entries[next];
                    let proc = merged.cfg.proc_of(entry).id;
                    c2.stacks[next].push(Frame { proc, pc: entry, locals: 0, on_return: None });
                }
                successors.push(c2);
            }
        }
        for s in successors {
            if visited.insert(s.clone()) {
                queue.push_back(s);
            }
        }
    }
    Ok(false)
}

/// One round of a context-switch schedule: the active thread and the
/// shared-global valuation the round is entered with (round 0 always starts
/// from the all-`false` valuation).
pub type ScheduleRound = (usize, Bits);

/// Replays a *fixed schedule* — the witness the symbolic engine extracts —
/// against the explicit semantics: exploration is restricted to exactly the
/// per-round active threads of `schedule`, and a switch from round `j` to
/// round `j + 1` is only taken when the shared globals equal the valuation
/// the schedule recorded for that switch point. Returns `true` iff a target
/// pc is reachable in the **final** round under those constraints — i.e.
/// the schedule really is executable, switch valuations and all.
///
/// This is the concurrent analogue of sequential trace replay: the schedule
/// fixes the only unbounded choices (who runs when, what the globals were
/// at each hand-over), and the explicit engine fills in the intra-round
/// steps.
///
/// # Errors
///
/// See [`ConcExplicitError`]. A malformed schedule (empty, or naming a
/// thread out of range) is an error; a well-formed but infeasible schedule
/// returns `Ok(false)`.
pub fn conc_replay_schedule(
    merged: &Merged,
    targets: &[Pc],
    schedule: &[ScheduleRound],
    limits: ConcLimits,
) -> Result<bool, ConcExplicitError> {
    let cfg = &merged.cfg;
    if cfg.globals.len() > 64 {
        return Err(ConcExplicitError::TooManyVariables(format!(
            "{} merged globals exceed 64",
            cfg.globals.len()
        )));
    }
    check_schedule_shape(merged, schedule)?;
    let target_set: BTreeSet<Pc> = targets.iter().copied().collect();
    let last_round = schedule.len() - 1;

    /// A configuration pinned to a schedule round.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    struct Timed {
        round: usize,
        config: Config,
    }

    let init = Timed { round: 0, config: initial_config(merged, schedule[0].0) };

    let mut visited: BTreeSet<Timed> = BTreeSet::new();
    let mut queue: VecDeque<Timed> = VecDeque::new();
    visited.insert(init.clone());
    queue.push_back(init);

    while let Some(t) = queue.pop_front() {
        if visited.len() > limits.max_states {
            return Err(ConcExplicitError::StateLimit(limits.max_states));
        }
        limits.resources.note_steps(1).map_err(|kind| ConcExplicitError::ResourceLimit {
            kind,
            search_states: visited.len(),
        })?;
        if t.round == last_round {
            if let Some(top) = t.config.stacks[t.config.active].last() {
                if target_set.contains(&top.pc) {
                    return Ok(true);
                }
            }
        }
        let mut stepped: Vec<(Config, ReplayStep)> = Vec::new();
        step_active(merged, &t.config, limits.max_stack, &mut stepped)?;
        let mut timed: Vec<Timed> =
            stepped.into_iter().map(|(c, _)| Timed { round: t.round, config: c }).collect();
        // The one permitted switch: to the next scheduled round, only when
        // the globals match the recorded hand-over valuation.
        if t.round < last_round {
            let (next_thread, entry_globals) = schedule[t.round + 1];
            if t.config.globals == entry_globals {
                let mut c2 = t.config.clone();
                c2.switches_used += 1;
                c2.active = next_thread;
                if c2.stacks[next_thread].is_empty() {
                    let entry = merged.thread_entries[next_thread];
                    c2.stacks[next_thread].push(Frame {
                        proc: cfg.proc_of(entry).id,
                        pc: entry,
                        locals: 0,
                        on_return: None,
                    });
                }
                timed.push(Timed { round: t.round + 1, config: c2 });
            }
        }
        for s in timed {
            if visited.insert(s.clone()) {
                queue.push_back(s);
            }
        }
    }
    Ok(false)
}

/// One scripted step of a statement-granular concurrent trace: which
/// thread moved, in which schedule round, and the transition's post-state
/// (the same [`ReplayStep`] shape sequential replay uses — destination pc,
/// shared globals, and the active frame's locals after the step).
///
/// Context switches are not steps: the `round` field places every step in
/// a schedule round, and [`conc_replay_guided`] performs the hand-overs
/// between rounds itself, checking the recorded valuations. This makes
/// zero-step rounds (a thread that switches in and immediately out, or a
/// target already at the handed-over pc) representable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuidedStep {
    /// Index of the schedule round the step executes in.
    pub round: usize,
    /// The thread taking the step — must equal the round's scheduled
    /// thread.
    pub thread: usize,
    /// The transition, recording the post-state.
    pub step: ReplayStep,
}

/// A statement-granular refinement of a context-switch schedule: the step
/// script plus how much searching it took to find.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefinedTrace {
    /// The steps, in execution order across all rounds.
    pub steps: Vec<GuidedStep>,
    /// Distinct configurations the schedule-constrained search visited —
    /// the work [`conc_replay_guided`] does *not* repeat (it visits
    /// exactly `steps.len() + 1` configurations).
    pub search_states: usize,
}

/// Refines a fixed schedule into a **statement-granular step sequence**:
/// explores under exactly the schedule's per-round threads and hand-over
/// valuations (as [`conc_replay_schedule`] does), but records predecessor
/// links, and on reaching a target pc in the final round reconstructs the
/// concrete interleaved path as a [`GuidedStep`] script. Returns
/// `Ok(None)` when the schedule is well-formed but infeasible.
///
/// The returned script resolves *every* choice left open by the schedule —
/// which statement runs next, and the value taken at each
/// nondeterministic assign, call-argument, and return site
/// ([`enumerate_choices`] pinning) — so [`conc_replay_guided`] can follow
/// it with no search at all.
///
/// # Errors
///
/// See [`ConcExplicitError`]; schedule-shape requirements match
/// [`conc_replay_schedule`].
pub fn conc_refine_schedule(
    merged: &Merged,
    targets: &[Pc],
    schedule: &[ScheduleRound],
    limits: ConcLimits,
) -> Result<Option<RefinedTrace>, ConcExplicitError> {
    let cfg = &merged.cfg;
    if cfg.globals.len() > 64 {
        return Err(ConcExplicitError::TooManyVariables(format!(
            "{} merged globals exceed 64",
            cfg.globals.len()
        )));
    }
    check_schedule_shape(merged, schedule)?;
    let target_set: BTreeSet<Pc> = targets.iter().copied().collect();
    let last_round = schedule.len() - 1;

    /// A configuration pinned to a schedule round.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    struct Timed {
        round: usize,
        config: Config,
    }

    let init = Timed { round: 0, config: initial_config(merged, schedule[0].0) };
    // States are interned: `index` deduplicates, `links` holds the
    // predecessor id and the step taken into each state by discovery id —
    // configurations are stored once, and path reconstruction follows
    // `usize` links instead of cloning configuration chains. A switch edge
    // carries no step (the guided replayer re-derives hand-overs from the
    // schedule itself); the initial state has no predecessor.
    let mut index: BTreeMap<Timed, usize> = BTreeMap::new();
    let mut links: Vec<(Option<usize>, Option<GuidedStep>)> = Vec::new();
    index.insert(init.clone(), 0);
    links.push((None, None));
    let mut queue: VecDeque<(usize, Timed)> = VecDeque::from([(0, init)]);

    let mut goal: Option<usize> = None;
    'bfs: while let Some((id, t)) = queue.pop_front() {
        if links.len() > limits.max_states {
            return Err(ConcExplicitError::StateLimit(limits.max_states));
        }
        // The refine BFS is the unbounded-search hotspot: account every
        // expansion against the shared step budget and report how many
        // configurations were searched when a bound trips.
        limits.resources.note_steps(1).map_err(|kind| ConcExplicitError::ResourceLimit {
            kind,
            search_states: links.len(),
        })?;
        if t.round == last_round {
            if let Some(top) = t.config.stacks[t.config.active].last() {
                if target_set.contains(&top.pc) {
                    goal = Some(id);
                    break 'bfs;
                }
            }
        }
        let mut stepped: Vec<(Config, ReplayStep)> = Vec::new();
        step_active(merged, &t.config, limits.max_stack, &mut stepped)?;
        let mut timed: Vec<(Timed, Option<GuidedStep>)> = stepped
            .into_iter()
            .map(|(c, step)| {
                let gs = GuidedStep { round: t.round, thread: t.config.active, step };
                (Timed { round: t.round, config: c }, Some(gs))
            })
            .collect();
        if t.round < last_round {
            let (next_thread, entry_globals) = schedule[t.round + 1];
            if t.config.globals == entry_globals {
                let mut c2 = t.config.clone();
                c2.switches_used += 1;
                c2.active = next_thread;
                if c2.stacks[next_thread].is_empty() {
                    let entry = merged.thread_entries[next_thread];
                    c2.stacks[next_thread].push(Frame {
                        proc: cfg.proc_of(entry).id,
                        pc: entry,
                        locals: 0,
                        on_return: None,
                    });
                }
                timed.push((Timed { round: t.round + 1, config: c2 }, None));
            }
        }
        for (s, gs) in timed {
            if let std::collections::btree_map::Entry::Vacant(v) = index.entry(s.clone()) {
                let sid = links.len();
                v.insert(sid);
                links.push((Some(id), gs));
                queue.push_back((sid, s));
            }
        }
    }

    let Some(mut at) = goal else { return Ok(None) };
    let search_states = links.len();
    let mut steps: Vec<GuidedStep> = Vec::new();
    loop {
        let (parent, step) = links[at];
        if let Some(s) = step {
            steps.push(s);
        }
        match parent {
            Some(p) => at = p,
            None => break,
        }
    }
    steps.reverse();
    Ok(Some(RefinedTrace { steps, search_states }))
}

/// **Follows** a step script deterministically — the validation mode the
/// statement-granular witness pipeline rests on. Unlike
/// [`conc_replay_schedule`], which re-explores the intra-round steps, this
/// maintains exactly one configuration and advances it one scripted step
/// at a time: hand-overs between rounds are taken from `schedule`
/// (rejecting a switch whose shared globals disagree with the recorded
/// valuation), and each [`GuidedStep`] is checked against the concrete
/// semantics — legal edge, admissible guard and chosen values, untouched
/// frame bits — before being applied. Zero search states beyond the
/// scripted path are visited.
///
/// # Errors
///
/// [`ConcExplicitError::ScriptRejected`] names the first step whose
/// thread, pc, or valuation disagrees with the engine (or an end-of-script
/// failure: trailing hand-over mismatch, final pc not a target). Schedule
/// shape errors and width/depth limits surface as in
/// [`conc_replay_schedule`].
pub fn conc_replay_guided(
    merged: &Merged,
    targets: &[Pc],
    schedule: &[ScheduleRound],
    steps: &[GuidedStep],
    limits: ConcLimits,
) -> Result<(), ConcExplicitError> {
    let cfg = &merged.cfg;
    if cfg.globals.len() > 64 {
        return Err(ConcExplicitError::TooManyVariables(format!(
            "{} merged globals exceed 64",
            cfg.globals.len()
        )));
    }
    check_schedule_shape(merged, schedule)?;
    let last_round = schedule.len() - 1;
    let reject =
        |step: usize, message: String| Err(ConcExplicitError::ScriptRejected { step, message });

    let mut c = initial_config(merged, schedule[0].0);
    let mut round = 0usize;
    // Takes the scheduled hand-over into round `round + 1`, checking the
    // recorded valuation.
    let hand_over = |c: &mut Config, round: &mut usize, at_step: usize| {
        let (next_thread, entry_globals) = schedule[*round + 1];
        if c.globals != entry_globals {
            return Err(ConcExplicitError::ScriptRejected {
                step: at_step,
                message: format!(
                    "hand-over into round {} recorded globals {:#b}, the engine has {:#b}",
                    *round + 1,
                    entry_globals,
                    c.globals
                ),
            });
        }
        *round += 1;
        c.switches_used += 1;
        c.active = next_thread;
        if c.stacks[next_thread].is_empty() {
            let entry = merged.thread_entries[next_thread];
            c.stacks[next_thread].push(Frame {
                proc: merged.cfg.proc_of(entry).id,
                pc: entry,
                locals: 0,
                on_return: None,
            });
        }
        Ok(())
    };

    for (i, gs) in steps.iter().enumerate() {
        if gs.round < round {
            return reject(
                i,
                format!("step belongs to round {}, but round {round} is already active", gs.round),
            );
        }
        if gs.round > last_round {
            return reject(
                i,
                format!(
                    "step belongs to round {}, beyond the schedule's {} rounds",
                    gs.round,
                    schedule.len()
                ),
            );
        }
        while round < gs.round {
            hand_over(&mut c, &mut round, i)?;
        }
        if gs.thread != c.active {
            return reject(
                i,
                format!(
                    "step names thread {}, round {round} schedules thread {}",
                    gs.thread, c.active
                ),
            );
        }
        if let Err(message) = apply_guided(merged, &mut c, &gs.step, limits.max_stack) {
            return reject(i, message);
        }
    }
    // Trailing zero-step rounds still hand over (and check valuations).
    while round < last_round {
        hand_over(&mut c, &mut round, steps.len())?;
    }
    match c.stacks[c.active].last() {
        Some(top) if targets.contains(&top.pc) => Ok(()),
        Some(top) => reject(steps.len(), format!("final pc {} is not a target", top.pc)),
        None => reject(steps.len(), "final round's thread never started".into()),
    }
}

/// The shared schedule-shape validation of the replay entry points.
fn check_schedule_shape(
    merged: &Merged,
    schedule: &[ScheduleRound],
) -> Result<(), ConcExplicitError> {
    if schedule.is_empty()
        || schedule.iter().any(|&(t, _)| t >= merged.n_threads)
        || schedule[0].1 != 0
    {
        return Err(ConcExplicitError::MalformedSchedule(format!(
            "malformed schedule {schedule:?} for {} threads \
             (round 0 must start from the all-false valuation)",
            merged.n_threads
        )));
    }
    Ok(())
}

/// The initial configuration: `first` active at its thread entry, every
/// variable `false`, all other threads not yet started.
fn initial_config(merged: &Merged, first: usize) -> Config {
    let mut stacks: Vec<Vec<Frame>> = vec![Vec::new(); merged.n_threads];
    let entry = merged.thread_entries[first];
    stacks[first].push(Frame {
        proc: merged.cfg.proc_of(entry).id,
        pc: entry,
        locals: 0,
        on_return: None,
    });
    Config { switches_used: 0, active: first, globals: 0, stacks }
}

/// Applies one scripted step to `c` in place, validating it is a legal
/// transition of the active thread under the concrete semantics (the
/// concurrent analogue of [`getafix_boolprog::replay`]'s per-step checks).
/// Returns a rejection message naming the disagreement.
fn apply_guided(
    merged: &Merged,
    c: &mut Config,
    step: &ReplayStep,
    max_stack: usize,
) -> Result<(), String> {
    let cfg = &merged.cfg;
    let n_globals = cfg.globals.len();
    let Some(top) = c.stacks[c.active].last().cloned() else {
        return Err(format!("thread {} has halted (empty stack)", c.active));
    };
    let proc = &cfg.procs[top.proc];
    let bit = |bits: Bits, i: usize| (bits >> i) & 1 == 1;
    match *step {
        ReplayStep::Internal { to, globals: g2, locals: l2 } => {
            let edges = proc.edges.get(&top.pc).map(Vec::as_slice).unwrap_or(&[]);
            let mut matched = false;
            'edges: for e in edges {
                let Edge::Internal { to: eto, guard, assigns } = e else { continue };
                if *eto != to || !admits(guard, c.globals, top.locals, true) {
                    continue;
                }
                let mut assigned_l: u64 = 0;
                let mut assigned_g: u64 = 0;
                for (tv, expr) in assigns {
                    let new = match tv {
                        VarRef::Local(j) => {
                            assigned_l |= 1 << j;
                            bit(l2, *j)
                        }
                        VarRef::Global(j) => {
                            assigned_g |= 1 << j;
                            bit(g2, *j)
                        }
                    };
                    if !admits(expr, c.globals, top.locals, new) {
                        continue 'edges;
                    }
                }
                let lmask = frame_mask(proc.n_locals()) & !assigned_l;
                let gmask = frame_mask(n_globals) & !assigned_g;
                if (l2 & lmask) != (top.locals & lmask)
                    || (g2 & gmask) != (c.globals & gmask)
                    || l2 & !frame_mask(proc.n_locals()) != 0
                    || g2 & !frame_mask(n_globals) != 0
                {
                    continue;
                }
                matched = true;
                break;
            }
            if !matched {
                return Err(format!(
                    "no internal edge {} -> {to} of `{}` admits globals={g2:#b} locals={l2:#b}",
                    top.pc, proc.name
                ));
            }
            c.globals = g2;
            let fi = c.stacks[c.active].len() - 1;
            let f = &mut c.stacks[c.active][fi];
            f.pc = to;
            f.locals = l2;
        }
        ReplayStep::Call { entry, globals: g2, locals: l2 } => {
            if c.stacks[c.active].len() >= max_stack {
                return Err(format!("stack depth limit {max_stack} exceeded"));
            }
            let edges = proc.edges.get(&top.pc).map(Vec::as_slice).unwrap_or(&[]);
            let mut pushed = None;
            'calls: for e in edges {
                let Edge::Call { callee, args, rets, ret_to } = e else { continue };
                let q = &cfg.procs[*callee];
                if q.entry != entry || g2 != c.globals {
                    continue;
                }
                for (j, arg) in args.iter().enumerate() {
                    if !admits(arg, c.globals, top.locals, bit(l2, j)) {
                        continue 'calls;
                    }
                }
                // Non-parameter callee locals start false.
                if l2 & !frame_mask(args.len()) != 0 {
                    continue;
                }
                pushed = Some(Frame {
                    proc: *callee,
                    pc: entry,
                    locals: l2,
                    on_return: Some((rets.clone(), *ret_to)),
                });
                break;
            }
            let Some(frame) = pushed else {
                return Err(format!(
                    "no call edge at pc {} of `{}` enters {entry} with locals={l2:#b}",
                    top.pc, proc.name
                ));
            };
            c.stacks[c.active].push(frame);
        }
        ReplayStep::Return { ret_to, globals: g2, locals: l2 } => {
            let Some((rets, saved_ret_to)) = top.on_return.clone() else {
                return Err(format!("return from thread {}'s initial frame", c.active));
            };
            if saved_ret_to != ret_to {
                return Err(format!(
                    "return resumes at {ret_to}, the call expected {saved_ret_to}"
                ));
            }
            let Some(exit) = proc.exits.iter().find(|e| e.pc == top.pc) else {
                return Err(format!("pc {} is not an exit of `{}`", top.pc, proc.name));
            };
            let stack = &c.stacks[c.active];
            if stack.len() < 2 {
                return Err("a return frame records a caller, but no frame lies below it \
                     on the stack"
                    .into());
            }
            let caller = stack[stack.len() - 2].clone();
            let caller_proc = &cfg.procs[caller.proc];
            let mut assigned_l: u64 = 0;
            let mut assigned_g: u64 = 0;
            for (target, expr) in rets.iter().zip(&exit.ret_exprs) {
                let new = match target {
                    VarRef::Local(j) => {
                        assigned_l |= 1 << j;
                        bit(l2, *j)
                    }
                    VarRef::Global(j) => {
                        assigned_g |= 1 << j;
                        bit(g2, *j)
                    }
                };
                if !admits(expr, c.globals, top.locals, new) {
                    return Err(format!("return value {new} not admitted by the exit expression"));
                }
            }
            let lmask = frame_mask(caller_proc.n_locals()) & !assigned_l;
            let gmask = frame_mask(n_globals) & !assigned_g;
            if (l2 & lmask) != (caller.locals & lmask) {
                return Err("caller locals clobbered across the call".into());
            }
            if (g2 & gmask) != (c.globals & gmask) {
                return Err("globals changed by the return itself".into());
            }
            if l2 & !frame_mask(caller_proc.n_locals()) != 0 || g2 & !frame_mask(n_globals) != 0 {
                return Err("out-of-frame bits set".into());
            }
            c.stacks[c.active].pop();
            c.globals = g2;
            let fi = c.stacks[c.active].len() - 1;
            let f = &mut c.stacks[c.active][fi];
            f.pc = ret_to;
            f.locals = l2;
        }
    }
    Ok(())
}

/// Computes the successor configurations of the active thread, each paired
/// with the [`ReplayStep`] (post-state pc/globals/locals) that produced it.
///
/// Configurations built by this module always satisfy the engine's
/// structural invariants; callers feeding externally constructed state get
/// [`ConcExplicitError::MalformedConfiguration`] instead of a panic —
/// the CLI's exit-code-2 contract must hold even on corrupted input.
fn step_active(
    merged: &Merged,
    c: &Config,
    max_stack: usize,
    out: &mut Vec<(Config, ReplayStep)>,
) -> Result<(), ConcExplicitError> {
    let cfg = &merged.cfg;
    let Some(stack) = c.stacks.get(c.active) else {
        return Err(ConcExplicitError::MalformedConfiguration(format!(
            "active thread {} out of range ({} threads)",
            c.active,
            c.stacks.len()
        )));
    };
    let Some(top) = stack.last().cloned() else {
        return Ok(());
    };
    let Some(proc) = cfg.procs.get(top.proc) else {
        return Err(ConcExplicitError::MalformedConfiguration(format!(
            "frame names procedure id {} of {}",
            top.proc,
            cfg.procs.len()
        )));
    };
    if !proc.contains(top.pc) {
        return Err(ConcExplicitError::MalformedConfiguration(format!(
            "frame pc {} lies outside its procedure `{}`",
            top.pc, proc.name
        )));
    }

    // Return from an exit pc.
    if proc.is_exit(top.pc) {
        let Some(exit) = proc.exits.iter().find(|e| e.pc == top.pc) else {
            return Err(ConcExplicitError::MalformedConfiguration(format!(
                "pc {} is flagged as an exit of `{}` but has no exit point",
                top.pc, proc.name
            )));
        };
        if let Some((rets, ret_to)) = &top.on_return {
            let read = |v: VarRef| read_var(c.globals, top.locals, v);
            let sets: Vec<(bool, bool)> =
                exit.ret_exprs.iter().map(|e| e.value_set(&read)).collect();
            for vals in enumerate_choices(&sets) {
                let mut c2 = c.clone();
                c2.stacks[c.active].pop();
                let Some(caller) = c2.stacks[c.active].last_mut() else {
                    return Err(ConcExplicitError::MalformedConfiguration(
                        "a return frame records a caller, but no frame lies below it \
                         on the stack"
                            .into(),
                    ));
                };
                caller.pc = *ret_to;
                let mut g2 = c2.globals;
                let mut l2 = caller.locals;
                for (t, val) in rets.iter().zip(vals) {
                    write_var(&mut g2, &mut l2, *t, val);
                }
                c2.globals = g2;
                caller.locals = l2;
                let step = ReplayStep::Return { ret_to: *ret_to, globals: g2, locals: l2 };
                out.push((c2, step));
            }
        } else {
            // Thread main finished: the thread halts (no successor states
            // from this thread, but others may still switch in).
        }
        return Ok(());
    }

    let Some(edges) = proc.edges.get(&top.pc) else { return Ok(()) };
    for e in edges {
        match e {
            Edge::Internal { to, guard, assigns } => {
                let read = |v: VarRef| read_var(c.globals, top.locals, v);
                let (can_true, _) = guard.value_set(&read);
                if !can_true {
                    continue;
                }
                let sets: Vec<(bool, bool)> =
                    assigns.iter().map(|(_, e)| e.value_set(&read)).collect();
                for vals in enumerate_choices(&sets) {
                    let mut c2 = c.clone();
                    let Some(f) = c2.stacks[c.active].last_mut() else {
                        return Err(ConcExplicitError::MalformedConfiguration(
                            "active thread's stack emptied mid-step".into(),
                        ));
                    };
                    f.pc = *to;
                    let mut g2 = c2.globals;
                    let mut l2 = f.locals;
                    for ((t, _), val) in assigns.iter().zip(vals) {
                        write_var(&mut g2, &mut l2, *t, val);
                    }
                    c2.globals = g2;
                    f.locals = l2;
                    let step = ReplayStep::Internal { to: *to, globals: g2, locals: l2 };
                    out.push((c2, step));
                }
            }
            Edge::Call { callee, args, rets, ret_to } => {
                if c.stacks[c.active].len() >= max_stack {
                    return Err(ConcExplicitError::StackLimit(max_stack));
                }
                let read = |v: VarRef| read_var(c.globals, top.locals, v);
                let sets: Vec<(bool, bool)> = args.iter().map(|a| a.value_set(&read)).collect();
                for vals in enumerate_choices(&sets) {
                    let mut locals: Bits = 0;
                    for (i, &b) in vals.iter().enumerate() {
                        if b {
                            locals |= 1 << i;
                        }
                    }
                    let mut c2 = c.clone();
                    let q = &cfg.procs[*callee];
                    c2.stacks[c.active].push(Frame {
                        proc: *callee,
                        pc: q.entry,
                        locals,
                        on_return: Some((rets.clone(), *ret_to)),
                    });
                    let step = ReplayStep::Call { entry: q.entry, globals: c.globals, locals };
                    out.push((c2, step));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge;
    use getafix_boolprog::parse_concurrent;

    fn reach(src: &str, label: &str, k: usize) -> bool {
        let conc = parse_concurrent(src).unwrap();
        let merged = merge(&conc).unwrap();
        let pc = merged.cfg.label(label).unwrap_or_else(|| panic!("no label {label}"));
        conc_explicit_reachable(&merged, &[pc], k, ConcLimits::default()).unwrap()
    }

    const HANDSHAKE: &str = r#"
        shared flag;
        thread
          main() begin
            if (flag) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            flag := T;
          end
        endthread
    "#;

    #[test]
    fn needs_context_switches() {
        // Thread 0 sees flag only if thread 1 ran first: 1 switch when
        // thread 1 starts, or 2 when thread 0 starts.
        assert!(reach(HANDSHAKE, "t0__HIT", 1));
    }

    #[test]
    fn schedule_replay_follows_the_script() {
        let conc = parse_concurrent(HANDSHAKE).unwrap();
        let merged = merge(&conc).unwrap();
        let pc = merged.cfg.label("t0__HIT").unwrap();
        // Thread 1 runs first (sets flag = bit 0), hands over with flag=T.
        let good = [(1, 0), (0, 1)];
        assert!(conc_replay_schedule(&merged, &[pc], &good, ConcLimits::default()).unwrap());
        // Wrong hand-over valuation: switch point never matches.
        let bad_globals = [(1, 0), (0, 0)];
        assert!(!conc_replay_schedule(&merged, &[pc], &bad_globals, ConcLimits::default()).unwrap());
        // Wrong thread order: thread 0 alone never sees the flag.
        let bad_order = [(0, 0), (1, 1)];
        assert!(!conc_replay_schedule(&merged, &[pc], &bad_order, ConcLimits::default()).unwrap());
        // Malformed schedules are errors: empty, unknown thread, or a
        // round-0 valuation that contradicts the all-false start.
        assert!(conc_replay_schedule(&merged, &[pc], &[], ConcLimits::default()).is_err());
        assert!(conc_replay_schedule(&merged, &[pc], &[(7, 0)], ConcLimits::default()).is_err());
        assert!(
            conc_replay_schedule(&merged, &[pc], &[(1, 7), (0, 1)], ConcLimits::default()).is_err()
        );
    }

    #[test]
    fn zero_switches_insufficient() {
        assert!(!reach(HANDSHAKE, "t0__HIT", 0));
    }

    #[test]
    fn ping_pong_depth() {
        // a must be set by T1, then b by T0, then c by T1 again: at least
        // 3 switches if T0 starts... explore exact threshold.
        let src = r#"
            shared a, b, c;
            thread
              main() begin
                if (a) then
                  b := T;
                fi;
                if (c) then HIT: skip; fi;
              end
            endthread
            thread
              main() begin
                a := T;
                if (b) then
                  c := T;
                fi;
              end
            endthread
        "#;
        // T1: a:=T; switch. T0: b:=T; switch. T1: c:=T; switch. T0: HIT.
        assert!(reach(src, "t0__HIT", 3));
        assert!(!reach(src, "t0__HIT", 2));
    }

    #[test]
    fn switch_preserves_locals() {
        let src = r#"
            shared s;
            thread
              main() begin
                decl x;
                x := T;
                if (s & x) then HIT: skip; fi;
              end
            endthread
            thread
              main() begin
                s := T;
              end
            endthread
        "#;
        // x:=T in T0, switch to T1 (s:=T), switch back: x still T.
        assert!(reach(src, "t0__HIT", 2));
    }

    /// The engine's structural invariants, violated deliberately: each
    /// malformed configuration must surface as a structured error (the
    /// CLI's exit-code-2 contract), never a panic. These drive the paths
    /// that previously aborted via `expect`.
    #[test]
    fn malformed_configurations_error_instead_of_panicking() {
        let conc = parse_concurrent(HANDSHAKE).unwrap();
        let merged = merge(&conc).unwrap();
        let cfg = &merged.cfg;
        let step = |c: &Config| {
            let mut out = Vec::new();
            step_active(&merged, c, 12, &mut out).map(|()| out.len())
        };
        let malformed = |r: Result<usize, ConcExplicitError>| {
            assert!(
                matches!(r, Err(ConcExplicitError::MalformedConfiguration(_))),
                "expected MalformedConfiguration, got {r:?}"
            );
        };

        // Active thread out of range.
        let c = Config { switches_used: 0, active: 9, globals: 0, stacks: vec![Vec::new(); 2] };
        malformed(step(&c));

        // A frame naming a procedure id the program does not have.
        let mut stacks = vec![Vec::new(); 2];
        stacks[0].push(Frame { proc: 99, pc: 0, locals: 0, on_return: None });
        let c = Config { switches_used: 0, active: 0, globals: 0, stacks };
        malformed(step(&c));

        // A frame whose pc lies outside its procedure — the class the old
        // `expect("exit")` lookup would have aborted on.
        let other = cfg.proc_by_name("t1__main").unwrap();
        let mut stacks = vec![Vec::new(); 2];
        stacks[0].push(Frame { proc: cfg.main, pc: other.entry, locals: 0, on_return: None });
        let c = Config { switches_used: 0, active: 0, globals: 0, stacks };
        malformed(step(&c));

        // A return frame with no caller below it — the class the old
        // `expect("caller frame below callee")` aborted on.
        let t0 = cfg.proc_by_name("t0__main").unwrap();
        let exit = t0.exits[0].pc;
        let mut stacks = vec![Vec::new(); 2];
        stacks[0].push(Frame {
            proc: t0.id,
            pc: exit,
            locals: 0,
            on_return: Some((Vec::new(), t0.entry)),
        });
        let c = Config { switches_used: 0, active: 0, globals: 0, stacks };
        malformed(step(&c));

        // Well-formed configurations still step fine.
        let c = initial_config(&merged, 0);
        assert!(step(&c).is_ok());
    }

    #[test]
    fn guided_replay_follows_a_refined_script() {
        let conc = parse_concurrent(HANDSHAKE).unwrap();
        let merged = merge(&conc).unwrap();
        let pc = merged.cfg.label("t0__HIT").unwrap();
        let schedule = [(1, 0), (0, 1)];
        let refined = conc_refine_schedule(&merged, &[pc], &schedule, ConcLimits::default())
            .unwrap()
            .expect("feasible schedule refines");
        assert!(!refined.steps.is_empty());
        // Every step sits in a schedule round and names that round's thread.
        for s in &refined.steps {
            assert_eq!(s.thread, schedule[s.round].0);
        }
        conc_replay_guided(&merged, &[pc], &schedule, &refined.steps, ConcLimits::default())
            .expect("the refined script replays deterministically");
        // An infeasible schedule refines to nothing.
        assert_eq!(
            conc_refine_schedule(&merged, &[pc], &[(0, 0), (1, 0)], ConcLimits::default()).unwrap(),
            None
        );
    }

    #[test]
    fn guided_replay_rejects_mutated_scripts() {
        let conc = parse_concurrent(HANDSHAKE).unwrap();
        let merged = merge(&conc).unwrap();
        let pc = merged.cfg.label("t0__HIT").unwrap();
        let schedule = [(1, 0), (0, 1)];
        let limits = ConcLimits::default();
        let steps =
            conc_refine_schedule(&merged, &[pc], &schedule, limits.clone()).unwrap().unwrap().steps;
        let rejected = |r: Result<(), ConcExplicitError>| {
            assert!(
                matches!(r, Err(ConcExplicitError::ScriptRejected { .. })),
                "expected ScriptRejected, got {r:?}"
            );
        };

        // Wrong thread on a step.
        let mut bad = steps.clone();
        bad[0].thread = 0;
        rejected(conc_replay_guided(&merged, &[pc], &schedule, &bad, limits.clone()));

        // Wrong round (skipping ahead disagrees with the hand-over check
        // or the per-round thread).
        let mut bad = steps.clone();
        bad[0].round = 1;
        rejected(conc_replay_guided(&merged, &[pc], &schedule, &bad, limits.clone()));

        // Perturbed globals on a step.
        let mut bad = steps.clone();
        let i = bad
            .iter()
            .position(|s| matches!(s.step, ReplayStep::Internal { .. }))
            .expect("an internal step");
        if let ReplayStep::Internal { globals, .. } = &mut bad[i].step {
            *globals ^= 1;
        }
        rejected(conc_replay_guided(&merged, &[pc], &schedule, &bad, limits.clone()));

        // Reordered steps.
        if steps.len() >= 2 {
            let mut bad = steps.clone();
            bad.swap(0, 1);
            rejected(conc_replay_guided(&merged, &[pc], &schedule, &bad, limits.clone()));
        }

        // Truncated script: the final pc is no longer a target.
        let mut bad = steps.clone();
        bad.pop();
        rejected(conc_replay_guided(&merged, &[pc], &schedule, &bad, limits.clone()));

        // The pristine script still replays.
        conc_replay_guided(&merged, &[pc], &schedule, &steps, limits).unwrap();
    }

    #[test]
    fn calls_inside_threads() {
        let src = r#"
            shared s;
            thread
              main() begin
                decl r;
                r := get();
                if (r) then HIT: skip; fi;
              end
              get() returns 1 begin
                return s;
              end
            endthread
            thread
              main() begin
                call set();
              end
              set() begin
                s := T;
              end
            endthread
        "#;
        assert!(reach(src, "t0__HIT", 2));
        assert!(!reach(src, "t0__HIT", 0));
    }
}
