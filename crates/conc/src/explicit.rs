//! Explicit-state bounded-context-switch exploration: the concurrent
//! ground-truth oracle.
//!
//! A full configuration — shared globals plus one call stack per thread —
//! is explored by BFS with a context-switch budget. Unlike the symbolic
//! engine this cannot handle unbounded recursion (stacks are materialized),
//! so a stack-depth limit turns runaway recursion into an error; the tests
//! use it on finite-stack programs only.

use crate::merge::Merged;
use getafix_boolprog::{enumerate_choices, read_var, write_var, Bits, Edge, Pc, ProcId, VarRef};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// Errors from the explicit concurrent engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConcExplicitError {
    /// The state budget was exhausted.
    StateLimit(usize),
    /// A stack exceeded the depth limit (recursion too deep to explore
    /// explicitly).
    StackLimit(usize),
    /// Frame too wide for the explicit engine.
    TooManyVariables(String),
    /// A replay schedule that is not even shaped like a schedule (empty,
    /// or naming a thread the program does not have).
    MalformedSchedule(String),
}

impl fmt::Display for ConcExplicitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcExplicitError::StateLimit(n) => write!(f, "state limit {n} exceeded"),
            ConcExplicitError::StackLimit(n) => write!(f, "stack depth limit {n} exceeded"),
            ConcExplicitError::TooManyVariables(m) => write!(f, "{m}"),
            ConcExplicitError::MalformedSchedule(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ConcExplicitError {}

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct ConcLimits {
    /// Maximum distinct configurations.
    pub max_states: usize,
    /// Maximum call-stack depth per thread.
    pub max_stack: usize,
}

impl Default for ConcLimits {
    fn default() -> Self {
        ConcLimits { max_states: 2_000_000, max_stack: 12 }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Frame {
    proc: ProcId,
    pc: Pc,
    locals: Bits,
    /// (return-value targets in the caller, resume pc) captured at call.
    on_return: Option<(Vec<VarRef>, Pc)>,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Config {
    switches_used: usize,
    active: usize,
    globals: Bits,
    stacks: Vec<Vec<Frame>>,
}

/// Explicit bounded-context-switch reachability of any pc in `targets`.
///
/// # Errors
///
/// See [`ConcExplicitError`].
pub fn conc_explicit_reachable(
    merged: &Merged,
    targets: &[Pc],
    switches: usize,
    limits: ConcLimits,
) -> Result<bool, ConcExplicitError> {
    let cfg = &merged.cfg;
    if cfg.globals.len() > 64 {
        return Err(ConcExplicitError::TooManyVariables(format!(
            "{} merged globals exceed 64",
            cfg.globals.len()
        )));
    }
    let target_set: BTreeSet<Pc> = targets.iter().copied().collect();
    let mut visited: BTreeSet<Config> = BTreeSet::new();
    let mut queue: VecDeque<Config> = VecDeque::new();

    // Thread 0..n-1 may each be the initially active thread? §5 fixes the
    // schedule vector t̄, including t0 — any thread may run first.
    for first in 0..merged.n_threads {
        let mut stacks: Vec<Vec<Frame>> = vec![Vec::new(); merged.n_threads];
        let entry = merged.thread_entries[first];
        let proc = cfg.proc_of(entry).id;
        stacks[first].push(Frame { proc, pc: entry, locals: 0, on_return: None });
        let c = Config { switches_used: 0, active: first, globals: 0, stacks };
        if visited.insert(c.clone()) {
            queue.push_back(c);
        }
    }

    while let Some(c) = queue.pop_front() {
        if visited.len() > limits.max_states {
            return Err(ConcExplicitError::StateLimit(limits.max_states));
        }
        // Target check: active thread's top frame.
        if let Some(top) = c.stacks[c.active].last() {
            if target_set.contains(&top.pc) {
                return Ok(true);
            }
        }
        let mut successors: Vec<Config> = Vec::new();
        step_active(merged, &c, limits.max_stack, &mut successors)?;
        // Context switches.
        if c.switches_used < switches {
            for next in 0..merged.n_threads {
                if next == c.active {
                    continue;
                }
                let mut c2 = c.clone();
                c2.switches_used += 1;
                c2.active = next;
                if c2.stacks[next].is_empty() {
                    // First activation: start at the thread's main.
                    let entry = merged.thread_entries[next];
                    let proc = merged.cfg.proc_of(entry).id;
                    c2.stacks[next].push(Frame { proc, pc: entry, locals: 0, on_return: None });
                }
                successors.push(c2);
            }
        }
        for s in successors {
            if visited.insert(s.clone()) {
                queue.push_back(s);
            }
        }
    }
    Ok(false)
}

/// One round of a context-switch schedule: the active thread and the
/// shared-global valuation the round is entered with (round 0 always starts
/// from the all-`false` valuation).
pub type ScheduleRound = (usize, Bits);

/// Replays a *fixed schedule* — the witness the symbolic engine extracts —
/// against the explicit semantics: exploration is restricted to exactly the
/// per-round active threads of `schedule`, and a switch from round `j` to
/// round `j + 1` is only taken when the shared globals equal the valuation
/// the schedule recorded for that switch point. Returns `true` iff a target
/// pc is reachable in the **final** round under those constraints — i.e.
/// the schedule really is executable, switch valuations and all.
///
/// This is the concurrent analogue of sequential trace replay: the schedule
/// fixes the only unbounded choices (who runs when, what the globals were
/// at each hand-over), and the explicit engine fills in the intra-round
/// steps.
///
/// # Errors
///
/// See [`ConcExplicitError`]. A malformed schedule (empty, or naming a
/// thread out of range) is an error; a well-formed but infeasible schedule
/// returns `Ok(false)`.
pub fn conc_replay_schedule(
    merged: &Merged,
    targets: &[Pc],
    schedule: &[ScheduleRound],
    limits: ConcLimits,
) -> Result<bool, ConcExplicitError> {
    let cfg = &merged.cfg;
    if cfg.globals.len() > 64 {
        return Err(ConcExplicitError::TooManyVariables(format!(
            "{} merged globals exceed 64",
            cfg.globals.len()
        )));
    }
    if schedule.is_empty()
        || schedule.iter().any(|&(t, _)| t >= merged.n_threads)
        || schedule[0].1 != 0
    {
        return Err(ConcExplicitError::MalformedSchedule(format!(
            "malformed schedule {schedule:?} for {} threads \
             (round 0 must start from the all-false valuation)",
            merged.n_threads
        )));
    }
    let target_set: BTreeSet<Pc> = targets.iter().copied().collect();
    let last_round = schedule.len() - 1;

    /// A configuration pinned to a schedule round.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    struct Timed {
        round: usize,
        config: Config,
    }

    let first = schedule[0].0;
    let mut stacks: Vec<Vec<Frame>> = vec![Vec::new(); merged.n_threads];
    let entry = merged.thread_entries[first];
    stacks[first].push(Frame {
        proc: cfg.proc_of(entry).id,
        pc: entry,
        locals: 0,
        on_return: None,
    });
    let init =
        Timed { round: 0, config: Config { switches_used: 0, active: first, globals: 0, stacks } };

    let mut visited: BTreeSet<Timed> = BTreeSet::new();
    let mut queue: VecDeque<Timed> = VecDeque::new();
    visited.insert(init.clone());
    queue.push_back(init);

    while let Some(t) = queue.pop_front() {
        if visited.len() > limits.max_states {
            return Err(ConcExplicitError::StateLimit(limits.max_states));
        }
        if t.round == last_round {
            if let Some(top) = t.config.stacks[t.config.active].last() {
                if target_set.contains(&top.pc) {
                    return Ok(true);
                }
            }
        }
        let mut successors: Vec<Config> = Vec::new();
        step_active(merged, &t.config, limits.max_stack, &mut successors)?;
        let mut timed: Vec<Timed> =
            successors.into_iter().map(|c| Timed { round: t.round, config: c }).collect();
        // The one permitted switch: to the next scheduled round, only when
        // the globals match the recorded hand-over valuation.
        if t.round < last_round {
            let (next_thread, entry_globals) = schedule[t.round + 1];
            if t.config.globals == entry_globals {
                let mut c2 = t.config.clone();
                c2.switches_used += 1;
                c2.active = next_thread;
                if c2.stacks[next_thread].is_empty() {
                    let entry = merged.thread_entries[next_thread];
                    c2.stacks[next_thread].push(Frame {
                        proc: cfg.proc_of(entry).id,
                        pc: entry,
                        locals: 0,
                        on_return: None,
                    });
                }
                timed.push(Timed { round: t.round + 1, config: c2 });
            }
        }
        for s in timed {
            if visited.insert(s.clone()) {
                queue.push_back(s);
            }
        }
    }
    Ok(false)
}

fn step_active(
    merged: &Merged,
    c: &Config,
    max_stack: usize,
    out: &mut Vec<Config>,
) -> Result<(), ConcExplicitError> {
    let cfg = &merged.cfg;
    let Some(top) = c.stacks[c.active].last().cloned() else {
        return Ok(());
    };
    let proc = &cfg.procs[top.proc];

    // Return from an exit pc.
    if proc.is_exit(top.pc) {
        let exit = proc.exits.iter().find(|e| e.pc == top.pc).expect("exit");
        if let Some((rets, ret_to)) = &top.on_return {
            let read = |v: VarRef| read_var(c.globals, top.locals, v);
            let sets: Vec<(bool, bool)> =
                exit.ret_exprs.iter().map(|e| e.value_set(&read)).collect();
            for vals in enumerate_choices(&sets) {
                let mut c2 = c.clone();
                c2.stacks[c.active].pop();
                let caller = c2.stacks[c.active].last_mut().expect("caller frame below callee");
                caller.pc = *ret_to;
                let mut g2 = c2.globals;
                let mut l2 = caller.locals;
                for (t, val) in rets.iter().zip(vals) {
                    write_var(&mut g2, &mut l2, *t, val);
                }
                c2.globals = g2;
                caller.locals = l2;
                out.push(c2);
            }
        } else {
            // Thread main finished: the thread halts (no successor states
            // from this thread, but others may still switch in).
        }
        return Ok(());
    }

    let Some(edges) = proc.edges.get(&top.pc) else { return Ok(()) };
    for e in edges {
        match e {
            Edge::Internal { to, guard, assigns } => {
                let read = |v: VarRef| read_var(c.globals, top.locals, v);
                let (can_true, _) = guard.value_set(&read);
                if !can_true {
                    continue;
                }
                let sets: Vec<(bool, bool)> =
                    assigns.iter().map(|(_, e)| e.value_set(&read)).collect();
                for vals in enumerate_choices(&sets) {
                    let mut c2 = c.clone();
                    let f = c2.stacks[c.active].last_mut().expect("frame");
                    f.pc = *to;
                    let mut g2 = c2.globals;
                    let mut l2 = f.locals;
                    for ((t, _), val) in assigns.iter().zip(vals) {
                        write_var(&mut g2, &mut l2, *t, val);
                    }
                    c2.globals = g2;
                    f.locals = l2;
                    out.push(c2);
                }
            }
            Edge::Call { callee, args, rets, ret_to } => {
                if c.stacks[c.active].len() >= max_stack {
                    return Err(ConcExplicitError::StackLimit(max_stack));
                }
                let read = |v: VarRef| read_var(c.globals, top.locals, v);
                let sets: Vec<(bool, bool)> = args.iter().map(|a| a.value_set(&read)).collect();
                for vals in enumerate_choices(&sets) {
                    let mut locals: Bits = 0;
                    for (i, &b) in vals.iter().enumerate() {
                        if b {
                            locals |= 1 << i;
                        }
                    }
                    let mut c2 = c.clone();
                    let q = &cfg.procs[*callee];
                    c2.stacks[c.active].push(Frame {
                        proc: *callee,
                        pc: q.entry,
                        locals,
                        on_return: Some((rets.clone(), *ret_to)),
                    });
                    out.push(c2);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge;
    use getafix_boolprog::parse_concurrent;

    fn reach(src: &str, label: &str, k: usize) -> bool {
        let conc = parse_concurrent(src).unwrap();
        let merged = merge(&conc).unwrap();
        let pc = merged.cfg.label(label).unwrap_or_else(|| panic!("no label {label}"));
        conc_explicit_reachable(&merged, &[pc], k, ConcLimits::default()).unwrap()
    }

    const HANDSHAKE: &str = r#"
        shared flag;
        thread
          main() begin
            if (flag) then HIT: skip; fi;
          end
        endthread
        thread
          main() begin
            flag := T;
          end
        endthread
    "#;

    #[test]
    fn needs_context_switches() {
        // Thread 0 sees flag only if thread 1 ran first: 1 switch when
        // thread 1 starts, or 2 when thread 0 starts.
        assert!(reach(HANDSHAKE, "t0__HIT", 1));
    }

    #[test]
    fn schedule_replay_follows_the_script() {
        let conc = parse_concurrent(HANDSHAKE).unwrap();
        let merged = merge(&conc).unwrap();
        let pc = merged.cfg.label("t0__HIT").unwrap();
        // Thread 1 runs first (sets flag = bit 0), hands over with flag=T.
        let good = [(1, 0), (0, 1)];
        assert!(conc_replay_schedule(&merged, &[pc], &good, ConcLimits::default()).unwrap());
        // Wrong hand-over valuation: switch point never matches.
        let bad_globals = [(1, 0), (0, 0)];
        assert!(!conc_replay_schedule(&merged, &[pc], &bad_globals, ConcLimits::default()).unwrap());
        // Wrong thread order: thread 0 alone never sees the flag.
        let bad_order = [(0, 0), (1, 1)];
        assert!(!conc_replay_schedule(&merged, &[pc], &bad_order, ConcLimits::default()).unwrap());
        // Malformed schedules are errors: empty, unknown thread, or a
        // round-0 valuation that contradicts the all-false start.
        assert!(conc_replay_schedule(&merged, &[pc], &[], ConcLimits::default()).is_err());
        assert!(conc_replay_schedule(&merged, &[pc], &[(7, 0)], ConcLimits::default()).is_err());
        assert!(
            conc_replay_schedule(&merged, &[pc], &[(1, 7), (0, 1)], ConcLimits::default()).is_err()
        );
    }

    #[test]
    fn zero_switches_insufficient() {
        assert!(!reach(HANDSHAKE, "t0__HIT", 0));
    }

    #[test]
    fn ping_pong_depth() {
        // a must be set by T1, then b by T0, then c by T1 again: at least
        // 3 switches if T0 starts... explore exact threshold.
        let src = r#"
            shared a, b, c;
            thread
              main() begin
                if (a) then
                  b := T;
                fi;
                if (c) then HIT: skip; fi;
              end
            endthread
            thread
              main() begin
                a := T;
                if (b) then
                  c := T;
                fi;
              end
            endthread
        "#;
        // T1: a:=T; switch. T0: b:=T; switch. T1: c:=T; switch. T0: HIT.
        assert!(reach(src, "t0__HIT", 3));
        assert!(!reach(src, "t0__HIT", 2));
    }

    #[test]
    fn switch_preserves_locals() {
        let src = r#"
            shared s;
            thread
              main() begin
                decl x;
                x := T;
                if (s & x) then HIT: skip; fi;
              end
            endthread
            thread
              main() begin
                s := T;
              end
            endthread
        "#;
        // x:=T in T0, switch to T1 (s:=T), switch back: x still T.
        assert!(reach(src, "t0__HIT", 2));
    }

    #[test]
    fn calls_inside_threads() {
        let src = r#"
            shared s;
            thread
              main() begin
                decl r;
                r := get();
                if (r) then HIT: skip; fi;
              end
              get() returns 1 begin
                return s;
              end
            endthread
            thread
              main() begin
                call set();
              end
              set() begin
                s := T;
              end
            endthread
        "#;
        assert!(reach(src, "t0__HIT", 2));
        assert!(!reach(src, "t0__HIT", 0));
    }
}
