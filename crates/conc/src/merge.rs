//! Merging a concurrent program into one combined CFG.
//!
//! §5 assumes every thread ranges over the same global variables, all
//! shared. We realize that by *merging*: thread-private globals are mangled
//! (`t0__x`) and promoted to shared (no other thread mentions them, so the
//! semantics is unchanged), procedures are prefixed per thread, and a dummy
//! `main` satisfies the sequential checker. The merged CFG gives globally
//! unique pcs across threads, so the concurrent `Reach` relation reuses the
//! sequential template relations unchanged.

use getafix_boolprog::{BuildError, Cfg, ConcProgram, Expr, Pc, Proc, Program, Stmt, StmtKind};
use std::collections::BTreeSet;

/// The merged view of a concurrent program.
#[derive(Debug)]
pub struct Merged {
    /// The combined sequential CFG (threads' procedures side by side).
    pub cfg: Cfg,
    /// Entry pc of each thread's `main`, indexed by thread.
    pub thread_entries: Vec<Pc>,
    /// Number of threads.
    pub n_threads: usize,
}

/// Merges `conc` into a single CFG.
///
/// # Errors
///
/// Propagates semantic errors from CFG lowering, plus name-collision
/// errors between shared variables and mangled thread globals.
pub fn merge(conc: &ConcProgram) -> Result<Merged, BuildError> {
    if conc.threads.is_empty() {
        return Err(BuildError("a concurrent program needs at least one thread".into()));
    }
    let mut span = getafix_telemetry::span(getafix_telemetry::Phase::Merge, "merge");
    span.attr("threads", conc.threads.len());
    let mut globals: Vec<String> = conc.shared.clone();
    let mut procs: Vec<Proc> = vec![Proc {
        name: "main".into(),
        params: vec![],
        returns: 0,
        locals: vec![],
        body: vec![Stmt::new(StmtKind::Skip)],
    }];

    for (i, thread) in conc.threads.iter().enumerate() {
        let prefix = format!("t{i}__");
        let thread_globals: BTreeSet<&str> = thread.globals.iter().map(String::as_str).collect();
        for g in &thread.globals {
            globals.push(format!("{prefix}{g}"));
        }
        for p in &thread.procs {
            let locals: BTreeSet<&str> =
                p.params.iter().chain(&p.locals).map(String::as_str).collect();
            let ren = Renamer { prefix: &prefix, thread_globals: &thread_globals, locals: &locals };
            procs.push(Proc {
                name: format!("{prefix}{}", p.name),
                params: p.params.clone(),
                returns: p.returns,
                locals: p.locals.clone(),
                body: p.body.iter().map(|s| ren.stmt(s, i)).collect(),
            });
        }
    }

    let program = Program { globals, procs };
    let cfg = Cfg::build(&program)?;
    let thread_entries = (0..conc.threads.len())
        .map(|i| {
            cfg.proc_by_name(&format!("t{i}__main"))
                .map(|p| p.entry)
                .ok_or_else(|| BuildError(format!("thread {i} has no `main`")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Merged { cfg, thread_entries, n_threads: conc.threads.len() })
}

/// Slices a merged concurrent program, preserving bounded-round
/// reachability verdicts.
///
/// Runs the pre-solve analysis in concurrent mode (globals are havocked
/// at every step — any interleaving may rewrite shared state between two
/// statements of one thread) with every thread's entry procedure as a
/// root, then rewrites the merged CFG and remaps the thread entries. A
/// target pruned by the slice (absent from the returned
/// [`Slice::pc_map`](getafix_boolprog::Slice)) is provably unreachable
/// under *any* context-switch bound.
pub fn slice_merged(merged: &Merged, targets: &[Pc]) -> (Merged, getafix_boolprog::Slice) {
    use getafix_boolprog::analysis::{slice, AnalysisOptions};
    let opts = AnalysisOptions::concurrent_with_entries(&merged.cfg, &merged.thread_entries)
        .with_targets(targets);
    let sliced = slice(&merged.cfg, &opts);
    let thread_entries = merged
        .thread_entries
        .iter()
        .map(|&pc| sliced.map_pc(pc).expect("thread entries are analysis roots and survive"))
        .collect();
    (Merged { cfg: sliced.cfg.clone(), thread_entries, n_threads: merged.n_threads }, sliced)
}

struct Renamer<'a> {
    prefix: &'a str,
    thread_globals: &'a BTreeSet<&'a str>,
    locals: &'a BTreeSet<&'a str>,
}

impl Renamer<'_> {
    fn var(&self, name: &str) -> String {
        if !self.locals.contains(name) && self.thread_globals.contains(name) {
            format!("{}{}", self.prefix, name)
        } else {
            name.to_string()
        }
    }

    fn expr(&self, e: &Expr) -> Expr {
        match e {
            Expr::Const(b) => Expr::Const(*b),
            Expr::Nondet => Expr::Nondet,
            Expr::Var(v) => Expr::Var(self.var(v)),
            Expr::Not(a) => Expr::Not(Box::new(self.expr(a))),
            Expr::And(a, b) => Expr::And(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Or(a, b) => Expr::Or(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Eq(a, b) => Expr::Eq(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Ne(a, b) => Expr::Ne(Box::new(self.expr(a)), Box::new(self.expr(b))),
            Expr::Schoose(a, b) => Expr::Schoose(Box::new(self.expr(a)), Box::new(self.expr(b))),
        }
    }

    fn stmt(&self, s: &Stmt, thread: usize) -> Stmt {
        let kind = match &s.kind {
            StmtKind::Skip => StmtKind::Skip,
            StmtKind::Assign { targets, exprs } => StmtKind::Assign {
                targets: targets.iter().map(|t| self.var(t)).collect(),
                exprs: exprs.iter().map(|e| self.expr(e)).collect(),
            },
            StmtKind::CallAssign { targets, callee, args } => StmtKind::CallAssign {
                targets: targets.iter().map(|t| self.var(t)).collect(),
                callee: format!("{}{}", self.prefix, callee),
                args: args.iter().map(|e| self.expr(e)).collect(),
            },
            StmtKind::Call { callee, args } => StmtKind::Call {
                callee: format!("{}{}", self.prefix, callee),
                args: args.iter().map(|e| self.expr(e)).collect(),
            },
            StmtKind::Return(exprs) => {
                StmtKind::Return(exprs.iter().map(|e| self.expr(e)).collect())
            }
            StmtKind::If { cond, then_branch, else_branch } => StmtKind::If {
                cond: self.expr(cond),
                then_branch: then_branch.iter().map(|x| self.stmt(x, thread)).collect(),
                else_branch: else_branch.iter().map(|x| self.stmt(x, thread)).collect(),
            },
            StmtKind::While { cond, body } => StmtKind::While {
                cond: self.expr(cond),
                body: body.iter().map(|x| self.stmt(x, thread)).collect(),
            },
            StmtKind::Assert(e) => StmtKind::Assert(self.expr(e)),
            StmtKind::Assume(e) => StmtKind::Assume(self.expr(e)),
            StmtKind::Goto(l) => StmtKind::Goto(format!("t{thread}__{l}")),
            StmtKind::Dead(vars) => StmtKind::Dead(vars.iter().map(|v| self.var(v)).collect()),
        };
        Stmt { label: s.label.as_ref().map(|l| format!("t{thread}__{l}")), kind, line: s.line }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use getafix_boolprog::parse_concurrent;

    #[test]
    fn merge_two_threads() {
        let conc = parse_concurrent(
            r#"
            shared s;
            thread
              decl p;
              main() begin
                p := s;
                HIT: skip;
              end
            endthread
            thread
              main() begin
                s := T;
                call helper();
              end
              helper() begin
                s := !s;
              end
            endthread
            "#,
        )
        .unwrap();
        let merged = merge(&conc).unwrap();
        assert_eq!(merged.n_threads, 2);
        assert_eq!(merged.cfg.globals, vec!["s", "t0__p"]);
        assert!(merged.cfg.proc_by_name("t0__main").is_some());
        assert!(merged.cfg.proc_by_name("t1__helper").is_some());
        // Labels are thread-prefixed.
        assert!(merged.cfg.label("t0__HIT").is_some());
        // Entries point at the right procedures.
        let e0 = merged.thread_entries[0];
        assert_eq!(merged.cfg.proc_of(e0).name, "t0__main");
    }

    #[test]
    fn locals_shadow_thread_globals() {
        // A thread-global `x` and a procedure local `x`: the local wins
        // inside the procedure.
        let conc = parse_concurrent(
            r#"
            shared s;
            thread
              decl x;
              main() begin
                decl x;
                x := T;
              end
            endthread
            "#,
        )
        .unwrap();
        let merged = merge(&conc).unwrap();
        // The assignment targets the local, so t0__x is never written:
        // check by looking at the merged program's globals only.
        assert_eq!(merged.cfg.globals, vec!["s", "t0__x"]);
    }

    #[test]
    fn empty_thread_list_rejected() {
        let conc = ConcProgram { shared: vec!["s".into()], threads: vec![] };
        assert!(merge(&conc).is_err());
    }
}
