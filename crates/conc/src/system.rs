//! The bounded context-switching reachability fixpoint of §5.1, generated
//! as a formula parameterized by the context-switch bound `k` and the
//! thread count `n`.
//!
//! The relation is
//! `Reach(s: Conf, ecs: CS, cs: CS, gs: GVec, ts: TVec)` where
//!
//! * `s` packs the procedure-entry and current valuations of the *active*
//!   thread (exactly like the sequential summaries);
//! * `cs` is the number of context switches so far, `ecs` the count at the
//!   entry to the current procedure (`ecs ≤ cs`);
//! * `gs.g1 … gs.gk` are the shared-global valuations *at each switch
//!   point* — the paper's headline: only `k+1` copies of the globals ever
//!   appear (`gs` plus `s.cg`), against 3k in the eager reduction of
//!   Lal–Reps;
//! * `ts.t0 … ts.tk` name the thread active in each context.
//!
//! `First` / `Consecutive` and the indexed accesses `g_cs`, `t_cs` are
//! expanded into finite disjunctions over the (small, fixed) bound `k` —
//! the formula is *generated*, which is exactly how one uses a fixed-point
//! calculus as a programming language.

use getafix_boolprog::Cfg;
use getafix_core::systems::base_builder;
use getafix_mucalc::{Formula, System, SystemError, Term, Type};

/// Parameters of the concurrent analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcParams {
    /// Maximum number of context switches.
    pub switches: usize,
    /// Number of threads.
    pub threads: usize,
}

fn v(name: &str) -> Term {
    Term::var(name)
}

fn fld(name: &str, f: &str) -> Term {
    Term::field(name, f)
}

fn g_at(gs: &str, j: usize) -> Term {
    Term::field(gs, format!("g{j}"))
}

fn t_at(ts: &str, j: usize) -> Term {
    Term::field(ts, format!("t{j}"))
}

fn app(name: &str, args: Vec<Term>) -> Formula {
    Formula::app(name, args)
}

fn eq(a: Term, b: Term) -> Formula {
    Formula::eq(a, b)
}

fn conf() -> Type {
    Type::named("Conf")
}

fn cs_ty() -> Type {
    Type::named("CS")
}

/// `x`'s entry fields match `s`'s.
fn same_entry(x: &str, s: &str) -> Formula {
    Formula::and(vec![eq(fld(x, "ecl"), fld(s, "ecl")), eq(fld(x, "ecg"), fld(s, "ecg"))])
}

/// Generates the §5.1 system for `cfg` (a merged concurrent program).
///
/// # Errors
///
/// Propagates [`SystemError`]s from the builder.
pub fn system_conc(cfg: &Cfg, params: ConcParams) -> Result<System, SystemError> {
    let k = params.switches;
    let n = params.threads;
    assert!(k >= 1, "use the sequential engine for zero context switches");
    assert!(n >= 1);

    let mut b = base_builder(cfg)?;
    b.declare_type("CS", Type::Range((k + 1) as u64))?;
    b.declare_type("Tid", Type::Range(n as u64))?;
    b.declare_type(
        "GVec",
        Type::Struct((1..=k).map(|j| (format!("g{j}"), Type::named("Global"))).collect()),
    )?;
    b.declare_type(
        "TVec",
        Type::Struct((0..=k).map(|j| (format!("t{j}"), Type::named("Tid"))).collect()),
    )?;
    // InitConf(t, s): s is the initial configuration of thread t's main —
    // entry pc, all-false locals, entry halves mirroring current (globals
    // free: they are pinned by the context that activates the thread).
    b.input("InitConf", vec![("t".into(), Type::named("Tid")), ("s".into(), conf())]);

    let reach_params = vec![
        ("s".to_string(), conf()),
        ("ecs".to_string(), cs_ty()),
        ("cs".to_string(), cs_ty()),
        ("gs".to_string(), Type::named("GVec")),
        ("ts".to_string(), Type::named("TVec")),
    ];
    // Standard tail for recursive applications: same gs/ts vectors.
    let reach = |s: Term, ecs: Term, cs: Term| app("Reach", vec![s, ecs, cs, v("gs"), v("ts")]);

    // --- ϕ_init -----------------------------------------------------------
    let phi_init = Formula::and(vec![
        eq(v("cs"), Term::int(0)),
        eq(v("ecs"), Term::int(0)),
        app("InitConf", vec![t_at("ts", 0), v("s")]),
        eq(fld("s", "cg"), Term::int(0)),
    ]);

    // --- ϕ_int -------------------------------------------------------------
    let phi_int = Formula::exists(
        vec![("x".into(), conf())],
        Formula::and(vec![
            reach(v("x"), v("ecs"), v("cs")),
            same_entry("x", "s"),
            app(
                "ProgramInt",
                vec![
                    fld("x", "pc"),
                    fld("s", "pc"),
                    fld("x", "cl"),
                    fld("s", "cl"),
                    fld("x", "cg"),
                    fld("s", "cg"),
                ],
            ),
        ]),
    );

    // --- ϕ_call ------------------------------------------------------------
    let phi_call = Formula::and(vec![
        app("EntryOf", vec![fld("s", "pc")]),
        eq(fld("s", "ecl"), fld("s", "cl")),
        eq(fld("s", "ecg"), fld("s", "cg")),
        eq(v("ecs"), v("cs")),
        Formula::exists(
            vec![("x".into(), conf()), ("ecs2".into(), cs_ty())],
            Formula::and(vec![
                reach(v("x"), v("ecs2"), v("cs")),
                eq(fld("x", "cg"), fld("s", "cg")),
                app(
                    "ProgramCall",
                    vec![
                        fld("x", "pc"),
                        fld("s", "pc"),
                        fld("x", "cl"),
                        fld("s", "cl"),
                        fld("s", "cg"),
                    ],
                ),
            ]),
        ),
    ]);

    // --- ϕ_ret --------------------------------------------------------------
    // Caller reached with cs' ≤ cs switches; callee summary entered at cs'
    // and exited at cs; same gs/ts on both tuples (the stitching argument).
    // The caller's context must belong to the *same thread* as the current
    // one (t_{cs'} = t_cs), expanded over the bound.
    let same_thread_caller = {
        let mut cases = Vec::new();
        for b in 0..=k {
            for a in 0..=b {
                cases.push(Formula::and(vec![
                    eq(v("cs2"), Term::int(a as u64)),
                    eq(v("cs"), Term::int(b as u64)),
                    eq(t_at("ts", a), t_at("ts", b)),
                ]));
            }
        }
        Formula::or(cases)
    };
    let phi_ret = Formula::exists(
        vec![
            ("x".into(), conf()),
            ("u".into(), conf()),
            ("cs2".into(), cs_ty()),
            ("epc".into(), Type::named("PC")),
        ],
        Formula::and(vec![
            reach(v("x"), v("ecs"), v("cs2")),
            Formula::le(v("cs2"), v("cs")),
            same_thread_caller,
            same_entry("x", "s"),
            app("SkipCall", vec![fld("x", "pc"), fld("s", "pc")]),
            app(
                "ProgramCall",
                vec![fld("x", "pc"), v("epc"), fld("x", "cl"), fld("u", "ecl"), fld("x", "cg")],
            ),
            eq(fld("u", "ecg"), fld("x", "cg")),
            reach(v("u"), v("cs2"), v("cs")),
            app("ExitOf", vec![fld("u", "pc")]),
            app("SetReturn1", vec![fld("x", "pc"), fld("x", "cl"), fld("s", "cl")]),
            app(
                "SetReturn2",
                vec![
                    fld("x", "pc"),
                    fld("u", "pc"),
                    fld("u", "cl"),
                    fld("s", "cl"),
                    fld("u", "cg"),
                    fld("s", "cg"),
                ],
            ),
        ]),
    );

    // --- ϕ_1st-switch --------------------------------------------------------
    // Switching to thread ts.t_cs for the first time: the new thread starts
    // at its main entry; the globals are inherited from the suspended state
    // and recorded in gs.g_cs.
    let mut first_cases = Vec::new();
    for j in 1..=k {
        let mut parts = vec![
            eq(v("cs"), Term::int(j as u64)),
            eq(v("cs2"), Term::int((j - 1) as u64)),
            // First: t_j differs from every earlier context's thread.
            Formula::and((0..j).map(|r| Formula::ne(t_at("ts", r), t_at("ts", j))).collect()),
            // v.Global = g_cs = y.Global
            eq(fld("s", "cg"), g_at("gs", j)),
            eq(fld("x", "cg"), g_at("gs", j)),
            app("InitConf", vec![t_at("ts", j), v("s")]),
        ];
        first_cases.push(Formula::and(std::mem::take(&mut parts)));
    }
    let phi_first = Formula::and(vec![
        eq(v("ecs"), v("cs")),
        Formula::exists(
            vec![("x".into(), conf()), ("cs2".into(), cs_ty()), ("ecs2".into(), cs_ty())],
            Formula::and(vec![reach(v("x"), v("ecs2"), v("cs2")), Formula::or(first_cases)]),
        ),
    ]);

    // --- ϕ_switch -------------------------------------------------------------
    // Switching back: conjunct A imports the globals from the thread that
    // just ran; conjunct B recovers the suspended local state (same entry,
    // same pc, same locals) from the last context this thread was active in
    // (Consecutive).
    let mut conj_a_cases = Vec::new();
    for j in 1..=k {
        conj_a_cases.push(Formula::and(vec![
            eq(v("cs"), Term::int(j as u64)),
            eq(v("cs2"), Term::int((j - 1) as u64)),
            // Not first: some earlier context ran this thread.
            Formula::or((0..j).map(|r| eq(t_at("ts", r), t_at("ts", j))).collect()),
            eq(fld("s", "cg"), g_at("gs", j)),
            eq(fld("x", "cg"), g_at("gs", j)),
        ]));
    }
    let conj_a = Formula::exists(
        vec![("x".into(), conf()), ("cs2".into(), cs_ty()), ("ecs2".into(), cs_ty())],
        Formula::and(vec![reach(v("x"), v("ecs2"), v("cs2")), Formula::or(conj_a_cases)]),
    );
    let mut conj_b_cases = Vec::new();
    for bj in 1..=k {
        for aj in 0..bj {
            conj_b_cases.push(Formula::and(
                std::iter::once(eq(v("cs"), Term::int(bj as u64)))
                    .chain(std::iter::once(eq(v("cs3"), Term::int(aj as u64))))
                    .chain(std::iter::once(eq(t_at("ts", aj), t_at("ts", bj))))
                    .chain(((aj + 1)..bj).map(|r| Formula::ne(t_at("ts", r), t_at("ts", bj))))
                    // Suspension consistency: the resumed tuple must be the
                    // thread's state *at the switch out of context cs''*,
                    // i.e. its globals are the recorded switch valuation
                    // g_{cs''+1}. Without this, a run could resume locals
                    // from one point of the suspended context and globals
                    // from another — the stitching argument needs a single
                    // suspension point.
                    .chain(std::iter::once(eq(fld("x2", "cg"), g_at("gs", aj + 1))))
                    .collect(),
            ));
        }
    }
    let conj_b = Formula::exists(
        vec![("x2".into(), conf()), ("cs3".into(), cs_ty())],
        Formula::and(vec![
            reach(v("x2"), v("ecs"), v("cs3")),
            same_entry("x2", "s"),
            eq(fld("x2", "pc"), fld("s", "pc")),
            eq(fld("x2", "cl"), fld("s", "cl")),
            Formula::or(conj_b_cases),
        ]),
    );
    let phi_switch = Formula::and(vec![conj_a, conj_b]);

    b.define(
        "Reach",
        reach_params,
        Formula::or(vec![phi_init, phi_int, phi_call, phi_ret, phi_first, phi_switch]),
    );

    // Canonicalized view for set-size reporting: coordinates of ḡ and t̄
    // beyond the tuple's own switch count are semantically irrelevant
    // ("not relevant at all" — §5.1), so they are pinned to zero before
    // counting; otherwise every tuple would be counted 2^|unused| times.
    let mut canon = vec![app("Reach", vec![v("s"), v("ecs"), v("cs"), v("gs"), v("ts")])];
    for j in 1..=k {
        canon.push(Formula::or(vec![
            Formula::le(Term::int(j as u64), v("cs")),
            Formula::and(vec![eq(g_at("gs", j), Term::int(0)), eq(t_at("ts", j), Term::int(0))]),
        ]));
    }
    b.define(
        "ReachCanon",
        vec![
            ("s".to_string(), conf()),
            ("ecs".to_string(), cs_ty()),
            ("cs".to_string(), cs_ty()),
            ("gs".to_string(), Type::named("GVec")),
            ("ts".to_string(), Type::named("TVec")),
        ],
        Formula::and(canon),
    );

    b.query(
        "reach",
        Formula::exists(
            vec![
                ("s".into(), conf()),
                ("ecs".into(), cs_ty()),
                ("cs".into(), cs_ty()),
                ("gs".into(), Type::named("GVec")),
                ("ts".into(), Type::named("TVec")),
            ],
            Formula::and(vec![
                app("Reach", vec![v("s"), v("ecs"), v("cs"), v("gs"), v("ts")]),
                app("Target", vec![fld("s", "pc")]),
            ]),
        ),
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge;
    use getafix_boolprog::parse_concurrent;

    #[test]
    fn system_builds_for_various_k_n() {
        let conc = parse_concurrent(
            r#"
            shared s;
            thread
              main() begin
                s := T;
              end
            endthread
            thread
              main() begin
                if (s) then HIT: skip; fi;
              end
            endthread
            "#,
        )
        .unwrap();
        let merged = merge(&conc).unwrap();
        for k in 1..=4 {
            let sys = system_conc(&merged.cfg, ConcParams { switches: k, threads: 2 })
                .unwrap_or_else(|e| panic!("k={k}: {e}"));
            assert!(sys.relation("Reach").is_some());
            assert!(sys.is_positive("Reach"), "the concurrent fixpoint is positive");
        }
    }

    #[test]
    fn formula_stays_one_page() {
        let conc = parse_concurrent(
            r#"
            shared s;
            thread
              main() begin
                s := T;
              end
            endthread
            thread
              main() begin
                s := F;
              end
            endthread
            "#,
        )
        .unwrap();
        let merged = merge(&conc).unwrap();
        let sys = system_conc(&merged.cfg, ConcParams { switches: 2, threads: 2 }).unwrap();
        let text = sys.to_string();
        assert!(text.lines().count() < 120, "{} lines", text.lines().count());
    }
}
