//! Bounded context-switching reachability for concurrent recursive Boolean
//! programs — §5 of the paper.
//!
//! The contribution reproduced here is the *lazy* fixed-point formulation
//! `Reach(u, v, ecs, cs, ḡ, t̄)` that explores only reachable states and
//! keeps just `k + 1` copies of the shared globals (`ḡ` plus the current
//! valuation), against the `3k` copies of the eager Lal–Reps reduction.
//!
//! * [`merge`] folds the threads of a [`ConcProgram`](getafix_boolprog::ConcProgram)
//!   into one combined CFG
//!   (thread-private globals are promoted to shared with mangled names);
//! * [`system_conc`] *generates* the §5.1 formula for a given bound `k` and
//!   thread count `n` — `First`, `Consecutive` and the indexed accesses
//!   `g_cs`/`t_cs` expand into finite disjunctions;
//! * [`check_conc_reachability`] runs the pipeline end to end;
//! * [`conc_explicit_reachable`] is the explicit-state oracle for
//!   differential testing;
//! * [`conc_refine_schedule`] refines a bounded-round witness schedule
//!   into a statement-granular step script, and [`conc_replay_guided`]
//!   follows such a script deterministically (one successor per step, no
//!   search), rejecting any disagreement with the concrete semantics.
//!
//! # Example
//!
//! ```
//! use getafix_boolprog::parse_concurrent;
//! use getafix_conc::check_conc_reachability;
//!
//! let conc = parse_concurrent(r#"
//!     shared flag;
//!     thread
//!       main() begin
//!         if (flag) then HIT: skip; fi;
//!       end
//!     endthread
//!     thread
//!       main() begin
//!         flag := T;
//!       end
//!     endthread
//! "#)?;
//! // One context switch suffices: run the setter, switch, observe.
//! let result = check_conc_reachability(&conc, "t0__HIT", 1)?;
//! assert!(result.reachable);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod analysis;
mod explicit;
mod merge;
mod system;

pub use analysis::{
    build_conc_solver, build_conc_solver_with, check_conc_reachability,
    check_conc_reachability_with, check_conc_solver, check_merged, check_merged_with, ConcError,
    ConcResult,
};
pub use explicit::{
    conc_explicit_reachable, conc_refine_schedule, conc_replay_guided, conc_replay_schedule,
    ConcExplicitError, ConcLimits, GuidedStep, RefinedTrace, ScheduleRound,
};
pub use merge::{merge, slice_merged, Merged};
pub use system::{system_conc, ConcParams};
