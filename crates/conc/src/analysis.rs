//! The concurrent analysis driver: merge, generate the `Reach` system for
//! `(k, n)`, install templates, evaluate, and report the Figure 3 metrics.

use crate::merge::{merge, Merged};
use crate::system::{system_conc, ConcParams};
use getafix_boolprog::{BuildError, ConcProgram, Pc};
use getafix_core::install_templates;
use getafix_mucalc::{
    eq_const, Bdd, LimitReport, SolveError, SolveOptions, SolveStats, Solver, SystemError,
};
use getafix_telemetry::{self as telemetry, Phase};
use std::fmt;
use std::time::{Duration, Instant};

/// Errors from the concurrent driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConcError {
    /// Merging / lowering failed.
    Merge(String),
    /// Formula generation failed.
    System(String),
    /// Encoding or evaluation failed.
    Solve(String),
    /// A resource bound tripped; the boxed report keeps the partial solve
    /// statistics (equality compares the limit kind only).
    ResourceLimit(Box<LimitReport>),
    /// A solver pool worker panicked; the fault was isolated at the worker
    /// boundary and peers were cancelled.
    WorkerPanicked {
        /// Pool worker index (0-based).
        worker: usize,
        /// SCC stratum index the worker was solving.
        stratum: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// Unknown target label.
    NoSuchTarget(String),
}

impl fmt::Display for ConcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcError::Merge(m) => write!(f, "merge: {m}"),
            ConcError::System(m) => write!(f, "system: {m}"),
            ConcError::Solve(m) => write!(f, "solve: {m}"),
            ConcError::ResourceLimit(report) => write!(f, "solve: {report}"),
            ConcError::WorkerPanicked { worker, stratum, message } => {
                write!(
                    f,
                    "solve: worker {worker} panicked while solving stratum {stratum}: {message}"
                )
            }
            ConcError::NoSuchTarget(l) => write!(f, "no label `{l}`"),
        }
    }
}

impl std::error::Error for ConcError {}

impl From<BuildError> for ConcError {
    fn from(e: BuildError) -> Self {
        ConcError::Merge(e.to_string())
    }
}

impl From<SystemError> for ConcError {
    fn from(e: SystemError) -> Self {
        ConcError::System(e.to_string())
    }
}

impl From<SolveError> for ConcError {
    fn from(e: SolveError) -> Self {
        match e {
            // Keep the resource errors structured: stringifying would
            // discard the partial statistics the CLI reports on exit 3.
            SolveError::LimitExceeded(report) => ConcError::ResourceLimit(report),
            SolveError::WorkerPanicked { worker, stratum, message } => {
                ConcError::WorkerPanicked { worker, stratum, message }
            }
            other => ConcError::Solve(other.to_string()),
        }
    }
}

/// Result of a bounded context-switching run: the Figure 3 row.
#[derive(Debug, Clone)]
pub struct ConcResult {
    /// Is the target reachable within the switch bound?
    pub reachable: bool,
    /// Number of tuples in the final `Reach` relation (Figure 3's
    /// "Reachable set size", reported in thousands there).
    pub reach_tuples: f64,
    /// DAG node count of the final `Reach` BDD.
    pub reach_nodes: usize,
    /// Outer fixpoint iterations.
    pub iterations: usize,
    /// Wall-clock evaluation time.
    pub solve_time: Duration,
    /// The bound used.
    pub switches: usize,
    /// Full per-relation / per-SCC solver statistics.
    pub stats: SolveStats,
}

/// Builds a ready-to-run solver for the merged program at bound `k`.
///
/// # Errors
///
/// Propagates merge/system/encoding errors.
pub fn build_conc_solver(
    merged: &Merged,
    targets: &[Pc],
    switches: usize,
) -> Result<Solver, ConcError> {
    build_conc_solver_with(merged, targets, switches, SolveOptions::default())
}

/// As [`build_conc_solver`], with explicit solver options (strategy,
/// iteration bound).
///
/// # Errors
///
/// Propagates merge/system/encoding/option errors.
pub fn build_conc_solver_with(
    merged: &Merged,
    targets: &[Pc],
    switches: usize,
    options: SolveOptions,
) -> Result<Solver, ConcError> {
    if switches == 0 {
        return Err(ConcError::System(
            "a context-switch bound of 0 is a sequential question; \
             use the sequential engine on the first thread"
                .into(),
        ));
    }
    let mut span = telemetry::span(Phase::Encode, "build_conc_solver");
    if span.is_recording() {
        span.attr("switches", switches);
        span.attr("threads", merged.n_threads);
    }
    let params = ConcParams { switches, threads: merged.n_threads };
    let system = system_conc(&merged.cfg, params)?;
    let mut solver = Solver::with_options(system, options)?;
    install_templates(&mut solver, &merged.cfg, targets)
        .map_err(|e| ConcError::Solve(e.to_string()))?;

    // InitConf(t, s): thread t's main entry, all-false locals, entry halves
    // mirroring the current halves (globals free — pinned by the context
    // that activates the thread).
    let t_inst = solver.alloc().formal("InitConf", 0).clone();
    let s_inst = solver.alloc().formal("InitConf", 1).clone();
    let t_vars = t_inst.all_vars();
    let leaf = |name: &str| s_inst.leaves_under(&[name.to_string()])[0].vars.clone();
    let (pc_v, cl_v, cg_v, ecl_v, ecg_v) =
        (leaf("pc"), leaf("cl"), leaf("cg"), leaf("ecl"), leaf("ecg"));
    let m = solver.manager();
    let mut rel = Bdd::FALSE;
    for (i, &entry) in merged.thread_entries.iter().enumerate() {
        let mut b = eq_const(m, &t_vars, i as u64);
        let p = eq_const(m, &pc_v, entry as u64);
        b = m.and(b, p);
        let zl = eq_const(m, &cl_v, 0);
        b = m.and(b, zl);
        let zel = eq_const(m, &ecl_v, 0);
        b = m.and(b, zel);
        // ecg mirrors cg.
        for (&a, &c) in ecg_v.iter().zip(&cg_v) {
            let fa = m.var(a);
            let fc = m.var(c);
            let eqb = m.iff(fa, fc);
            b = m.and(b, eqb);
        }
        rel = m.or(rel, b);
    }
    solver.set_input("InitConf", rel)?;
    Ok(solver)
}

/// Checks reachability of `targets` within `switches` context switches.
///
/// # Errors
///
/// Propagates merge/system/evaluation errors.
pub fn check_conc_reachability(
    conc: &ConcProgram,
    label: &str,
    switches: usize,
) -> Result<ConcResult, ConcError> {
    check_conc_reachability_with(conc, label, switches, SolveOptions::default())
}

/// As [`check_conc_reachability`], with explicit solver options.
///
/// # Errors
///
/// Propagates merge/system/evaluation errors.
pub fn check_conc_reachability_with(
    conc: &ConcProgram,
    label: &str,
    switches: usize,
    options: SolveOptions,
) -> Result<ConcResult, ConcError> {
    let merged = merge(conc)?;
    let pc = merged.cfg.label(label).ok_or_else(|| ConcError::NoSuchTarget(label.to_string()))?;
    check_merged_with(&merged, &[pc], switches, options)
}

/// As [`check_conc_reachability`], over an already-merged program.
///
/// # Errors
///
/// Propagates system/evaluation errors.
pub fn check_merged(
    merged: &Merged,
    targets: &[Pc],
    switches: usize,
) -> Result<ConcResult, ConcError> {
    check_merged_with(merged, targets, switches, SolveOptions::default())
}

/// As [`check_merged`], with explicit solver options.
///
/// # Errors
///
/// Propagates system/evaluation errors.
pub fn check_merged_with(
    merged: &Merged,
    targets: &[Pc],
    switches: usize,
    options: SolveOptions,
) -> Result<ConcResult, ConcError> {
    let mut solver = build_conc_solver_with(merged, targets, switches, options)?;
    check_conc_solver(&mut solver, switches)
}

/// Evaluates the `reach` query of an already-built concurrent solver (see
/// [`build_conc_solver_with`]) and reports the Figure 3 metrics. The
/// solver's memoized interpretations stay available afterwards — witness
/// extraction can reuse them instead of re-solving.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn check_conc_solver(solver: &mut Solver, switches: usize) -> Result<ConcResult, ConcError> {
    let t0 = Instant::now();
    let reachable = solver.eval_query("reach")?;
    let solve_time = t0.elapsed();
    // Count over the canonicalized relation (unused ḡ/t̄ coordinates pinned).
    let reach_tuples = solver.tuple_count("ReachCanon")?;
    let stats = solver.stats().clone();
    let main = stats.relations.get("Reach").cloned().unwrap_or_default();
    Ok(ConcResult {
        reachable,
        reach_tuples,
        reach_nodes: main.final_nodes,
        iterations: main.iterations,
        solve_time,
        switches,
        stats,
    })
}
