//! The worklist engine's acceptance criterion, checked on the Figure 2
//! workload families: same verdicts as the round-robin reference, never
//! more relation re-evaluations, and *strictly fewer* wherever the system
//! has more than one stratum (the `simple` algorithm's `Summary` /
//! `EntryReach` split, and the concurrent `Reach` / `ReachCanon` split).

use getafix_bench::{compare_strategies, regression_cases, terminator_cases};
use getafix_conc::{check_merged_with, merge};
use getafix_core::Algorithm;
use getafix_mucalc::{SolveOptions, Strategy};
use getafix_workloads::{adder_err_label, bluetooth, driver, DriverSpec};

/// A small cross-section of the fig2 corpus: a few regression programs of
/// each polarity plus one SLAM-shaped driver.
fn sample_cases() -> Vec<getafix_bench::SeqCase> {
    let (pos, neg) = regression_cases();
    let mut cases: Vec<_> =
        pos.into_iter().step_by(24).chain(neg.into_iter().step_by(24)).collect();
    let d = driver(
        "strategy-driver",
        DriverSpec { handlers: 3, globals: 2, locals: 3, filler: 2, positive: false, seed: 7 },
    );
    cases.push(getafix_bench::SeqCase {
        name: d.name,
        program: d.program,
        label: d.label,
        expect: d.expect_reachable,
    });
    cases.extend(terminator_cases(2).into_iter().take(2));
    cases
}

#[test]
fn worklist_never_exceeds_round_robin() {
    let cases = sample_cases();
    for algo in Algorithm::ALL {
        let cmp = compare_strategies(&cases, algo);
        assert!(
            cmp.verdict_mismatches.is_empty(),
            "{algo}: verdict mismatches on {:?}",
            cmp.verdict_mismatches
        );
        assert!(
            cmp.worklist <= cmp.round_robin,
            "{algo}: worklist did MORE work ({} > {})",
            cmp.worklist,
            cmp.round_robin
        );
    }
}

#[test]
fn worklist_strictly_reduces_on_stratified_systems() {
    // The `simple` algorithm has two strata (`Summary`, then `EntryReach`
    // reading it); round-robin re-derives the full `Summary` fixpoint
    // inside every `EntryReach` round, the worklist engine solves it once.
    let cases = sample_cases();
    let cmp = compare_strategies(&cases, Algorithm::SummarySimple);
    assert!(cmp.verdict_mismatches.is_empty(), "{:?}", cmp.verdict_mismatches);
    assert!(
        cmp.worklist < cmp.round_robin,
        "expected a strict re-evaluation reduction, got {} vs {}",
        cmp.worklist,
        cmp.round_robin
    );
}

#[test]
fn worklist_strictly_reduces_on_the_conc_engine() {
    // Figure 3 workload: `ReachCanon` (tuple counting) is a separate
    // stratum over `Reach`; the worklist strategy reads the memoized
    // `Reach` instead of re-deriving its fixpoint.
    let conc = bluetooth(1, 1);
    let merged = merge(&conc).expect("merge");
    let targets = vec![merged.cfg.label(&adder_err_label(0)).expect("ERR label")];
    let rr =
        check_merged_with(&merged, &targets, 2, SolveOptions::with_strategy(Strategy::RoundRobin))
            .expect("round-robin");
    let wl =
        check_merged_with(&merged, &targets, 2, SolveOptions::with_strategy(Strategy::Worklist))
            .expect("worklist");
    assert_eq!(rr.reachable, wl.reachable);
    assert_eq!(rr.reach_tuples, wl.reach_tuples);
    assert_eq!(rr.reach_nodes, wl.reach_nodes);
    assert!(
        wl.stats.total_reevaluations() < rr.stats.total_reevaluations(),
        "expected strict reduction, got {} vs {}",
        wl.stats.total_reevaluations(),
        rr.stats.total_reevaluations()
    );
}

#[test]
fn ef_opt_ordered_schedule_strictly_reduces() {
    // The EF-opt system is one non-monotone component fitting the §4.3
    // frontier pattern: the worklist engine runs it on the ordered
    // change-driven schedule — identical answers (it reproduces the
    // reference rounds exactly), strictly less recompilation (the nested
    // reference re-derives `Relevant`/`New1`/`New2` from scratch inside
    // every round). This is the fig2 regression guard: a scheduler change
    // that loses the reduction fails CI here.
    let cases = sample_cases();
    let cmp = compare_strategies(&cases, Algorithm::EntryForwardOpt);
    assert!(cmp.verdict_mismatches.is_empty(), "{:?}", cmp.verdict_mismatches);
    assert!(
        cmp.worklist < cmp.round_robin,
        "expected the ordered schedule to strictly reduce ef-opt re-evaluations, \
         got {} vs {}",
        cmp.worklist,
        cmp.round_robin
    );
}
