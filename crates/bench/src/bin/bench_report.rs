//! Machine-readable benchmark report: runs the Figure 2 workload families
//! under both solver strategies and writes `BENCH_fig2.json` — per-workload
//! wall times and relation re-evaluation counts — so the performance
//! trajectory of the scheduler can be tracked across commits by tooling
//! instead of eyeballs. A second, Figure 3 group runs the concurrent
//! pipeline end to end — merge, bounded-context-switch solve, witness
//! extraction, statement refinement, guided replay — and writes
//! `BENCH_fig3.json` with per-phase wall times plus the explicit-search
//! vs guided-replay step counts (the work the guided replayer does *not*
//! repeat).
//!
//! ```text
//! cargo run --release -p getafix-bench --bin bench-report \
//!     [-- --out PATH] [--out-fig3 PATH] [--scale N] [--bits N] [--jobs N]
//!     [--timeout SECS] [--compare BASELINE.json] [--compare-out PATH]
//!     [--max-wall-regress R]
//! ```
//!
//! `--timeout SECS` (env fallback `GETAFIX_TIMEOUT`) puts one wall-clock
//! deadline over the whole run: every case of every workload shares the
//! same cancellation token, so the first trip stops all in-flight solves
//! at their next poll point and the process exits 3 with the tripping
//! case's partial statistics — a hung benchmark can never wedge CI.
//!
//! `--compare BASELINE.json` diffs the fresh fig2 report against a
//! committed baseline — per-workload wall/re-eval/cache-hit/peak-arena
//! deltas printed as a table and written to `BENCH_compare.json` — and
//! fails when the total matched worklist wall time exceeds
//! `--max-wall-regress` (default 1.25) times the baseline.
//!
//! `--jobs N` (default 1; env fallback `GETAFIX_JOBS`; 0 = all cores)
//! fans the independent cases of each fig2 workload, and the fig3
//! workloads themselves, across a worker pool. Every case solves on a
//! private BDD manager, so verdicts, re-evaluation counts and the
//! strategy guard are bit-identical at any job count — only wall times
//! change. The effective count is recorded as a top-level `jobs` field
//! (the baseline comparison matches workloads by name/algorithm and
//! ignores it).
//!
//! The JSON is emitted through [`getafix_telemetry::json::JsonWriter`]
//! (the workspace builds offline, without serde; the telemetry crate's
//! emitter is the one JSON implementation every tool shares), and every
//! per-strategy entry embeds the solver's own
//! [`SolveStats::to_json`] serialization — the same object `getafix …
//! --stats-json` prints — so this reporter *consumes* solver statistics
//! instead of re-deriving numbers:
//!
//! ```json
//! {
//!   "schema": "getafix-bench-fig2/3",
//!   "workloads": [
//!     { "name": "regression-positive", "cases": 9, "algorithm": "ef-opt",
//!       "strategies": {
//!         "worklist":    { "wall_ms": 12.3, "reevaluations": 150, "stats": { … } },
//!         "round-robin": { "wall_ms": 45.6, "reevaluations": 510, "stats": { … } } },
//!       "slice": { "vars_before": 400, "vars_after": 320, "relations_pruned": 12,
//!                  "reevaluations": 120, "wall_ms": 8.9 } },
//!     …
//!   ]
//! }
//! ```
//!
//! The `slice` object measures the pre-solve slicer on the same cases:
//! total encoded BDD variables before/after slicing, CFG relations
//! (edges + procedures) pruned, and the worklist re-evaluation count on
//! the sliced programs (compare against `strategies.worklist`). The
//! `dead-baggage` workload asserts a *strict* reduction in both variables
//! and re-evaluations on every run.

use getafix_bench::{dead_baggage_cases, regression_cases, slam_cases, terminator_cases, SeqCase};
use getafix_boolprog::analysis::{slice, AnalysisOptions};
use getafix_boolprog::{parse_concurrent, Cfg, Pc};
use getafix_conc::{
    build_conc_solver_with, check_conc_solver, conc_refine_schedule, conc_replay_guided, merge,
    ConcError, ConcExplicitError, ConcLimits, Merged,
};
use getafix_core::{build_solver_with, check_reachability_with, Algorithm, AnalysisError};
use getafix_mucalc::{
    parallel_map, resolve_jobs, ResourceLimits, SolveError, SolveOptions, SolveStats, Strategy,
};
use getafix_telemetry::json::JsonWriter;
use getafix_witness::{concurrent_witness_from, WitnessError};
use std::time::Instant;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// Builds the run-wide resource limits from `--timeout SECS` (env
/// fallback `GETAFIX_TIMEOUT`). Every case receives a clone of the
/// returned value, so the whole run shares one absolute deadline and one
/// cancellation token: the first trip stops every in-flight solve.
fn parse_limits(args: &[String]) -> ResourceLimits {
    let mut limits = ResourceLimits::default();
    let timeout = flag_value(args, "--timeout").or_else(|| std::env::var("GETAFIX_TIMEOUT").ok());
    if let Some(s) = timeout {
        let secs: f64 = s.trim().parse().unwrap_or_else(|e| panic!("--timeout: {e}"));
        assert!(
            secs.is_finite() && secs > 0.0,
            "--timeout: the deadline must be a positive number of seconds"
        );
        limits = limits.with_timeout(std::time::Duration::from_secs_f64(secs));
    }
    limits
}

/// Terminates the run on a tripped resource limit with the documented
/// exit code 3 — distinct from a panic (broken benchmark, nonzero abort)
/// so CI can tell "out of time" from "wrong". `detail` is the tripping
/// case's error, which for solver trips carries the partial statistics
/// (re-evaluations done, peak arena bytes).
fn exit_limit(context: &str, detail: &dyn std::fmt::Display) -> ! {
    eprintln!("resource-limit: {context} — {detail}");
    eprintln!("bench-report: run aborted by resource limit; reports not written (exit 3)");
    std::process::exit(3)
}

/// One strategy's aggregate over a workload: wall time plus the absorbed
/// solver statistics of every case.
struct StrategyNumbers {
    wall_ms: f64,
    stats: SolveStats,
}

fn run_strategy(
    cases: &[SeqCase],
    algorithm: Algorithm,
    strategy: Strategy,
    jobs: usize,
    limits: &ResourceLimits,
) -> StrategyNumbers {
    let t0 = Instant::now();
    // Each case builds its own CFG, solver and BDD manager, so the batch
    // fans out embarrassingly; verdict asserts run inside the workers and
    // stats are absorbed in case order afterwards, keeping the aggregate
    // bit-identical at any job count.
    let per_case = parallel_map(jobs, (0..cases.len()).collect(), |_, i| {
        let case = &cases[i];
        let cfg = Cfg::build(&case.program).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let pc = cfg
            .label(&case.label)
            .unwrap_or_else(|| panic!("{}: no label {}", case.name, case.label));
        let mut options = SolveOptions::with_strategy(strategy);
        options.limits = limits.clone();
        let r = match check_reachability_with(&cfg, &[pc], algorithm, options) {
            Ok(r) => r,
            Err(AnalysisError::ResourceLimit(report)) => {
                exit_limit(&format!("{} ({strategy})", case.name), &report)
            }
            Err(e) => panic!("{} ({strategy}): {e}", case.name),
        };
        assert_eq!(
            r.reachable, case.expect,
            "{} ({strategy}): wrong verdict — a benchmark that measures wrong answers is worthless",
            case.name
        );
        r.stats
    });
    let mut stats = SolveStats::default();
    for s in &per_case {
        stats.absorb(s);
    }
    StrategyNumbers { wall_ms: t0.elapsed().as_secs_f64() * 1e3, stats }
}

/// The pre-solve slicer's effect on a workload, aggregated over its
/// cases: encoded BDD variable counts before/after, CFG relations pruned,
/// and the worklist re-evaluation count on the sliced programs.
struct SliceNumbers {
    /// Sum of solver manager variable counts over the unsliced cases.
    vars_before: usize,
    /// Sum over the sliced cases (0 contribution when the slice proved a
    /// target unreachable and no solver was built at all).
    vars_after: usize,
    /// CFG relations removed: pruned edges plus dropped procedures.
    relations_pruned: usize,
    /// Worklist re-evaluations on the sliced cases.
    reevaluations: usize,
    wall_ms: f64,
}

fn run_slice(
    cases: &[SeqCase],
    algorithm: Algorithm,
    jobs: usize,
    limits: &ResourceLimits,
) -> SliceNumbers {
    let t0 = Instant::now();
    let per_case = parallel_map(jobs, (0..cases.len()).collect(), |_, i| {
        let case = &cases[i];
        let cfg = Cfg::build(&case.program).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let pc = cfg
            .label(&case.label)
            .unwrap_or_else(|| panic!("{}: no label {}", case.name, case.label));
        let mut options = SolveOptions::with_strategy(Strategy::Worklist);
        options.limits = limits.clone();
        // Variable allocation happens at encode time, so the unsliced
        // count needs a build but no solve (the solves above already
        // measured the unsliced work).
        let full = build_solver_with(&cfg, &[pc], algorithm, options.clone())
            .unwrap_or_else(|e| panic!("{} (slice baseline): {e}", case.name));
        let vars_before = full.manager_ref().var_count();
        drop(full);
        let sliced = slice(&cfg, &AnalysisOptions::sequential().with_targets(&[pc]));
        let (vars_after, reevals, verdict) = match sliced.map_pc(pc) {
            Some(new_pc) => {
                let mut cut = build_solver_with(&sliced.cfg, &[new_pc], algorithm, options)
                    .unwrap_or_else(|e| panic!("{} (sliced): {e}", case.name));
                let v = match cut.eval_query("reach") {
                    Ok(v) => v,
                    Err(SolveError::LimitExceeded(report)) => {
                        exit_limit(&format!("{} (sliced)", case.name), &report)
                    }
                    Err(e) => panic!("{} (sliced): {e}", case.name),
                };
                (cut.manager_ref().var_count(), cut.stats().total_reevaluations(), v)
            }
            // Target pruned: provably unreachable, nothing to solve.
            None => (0, 0, false),
        };
        assert_eq!(
            verdict, case.expect,
            "{}: --slice changed the verdict — slicing that rewrites answers is worthless",
            case.name
        );
        (vars_before, vars_after, sliced.stats.relations_pruned(), reevals)
    });
    let mut n = SliceNumbers {
        vars_before: 0,
        vars_after: 0,
        relations_pruned: 0,
        reevaluations: 0,
        wall_ms: 0.0,
    };
    for (vb, va, rp, re) in per_case {
        n.vars_before += vb;
        n.vars_after += va;
        n.relations_pruned += rp;
        n.reevaluations += re;
    }
    n.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    n
}

/// One strategy's end-to-end numbers on a concurrent workload.
struct ConcNumbers {
    reachable: bool,
    solve_ms: f64,
    /// Witness pipeline wall time: schedule extraction + statement
    /// refinement + guided replay (zero on unreachable verdicts).
    witness_ms: f64,
    /// Configurations the schedule-constrained *explicit search* visited
    /// while refining (0 when unreachable).
    explicit_search_states: usize,
    /// Steps in the refined script — the guided replayer visits exactly
    /// this many successor configurations, no more.
    guided_steps: usize,
    stats: SolveStats,
}

fn run_conc(
    merged: &Merged,
    targets: &[Pc],
    switches: usize,
    strategy: Strategy,
    limits: &ResourceLimits,
) -> ConcNumbers {
    let t0 = Instant::now();
    let mut options = SolveOptions::with_strategy(strategy);
    options.limits = limits.clone();
    let mut solver = build_conc_solver_with(merged, targets, switches, options)
        .unwrap_or_else(|e| panic!("{strategy}: {e}"));
    let r = match check_conc_solver(&mut solver, switches) {
        Ok(r) => r,
        Err(ConcError::ResourceLimit(report)) => exit_limit(&strategy.to_string(), &report),
        Err(e) => panic!("{strategy}: {e}"),
    };
    let solve_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let schedule = match concurrent_witness_from(&mut solver, merged, targets, switches) {
        Ok(s) => s,
        Err(e @ WitnessError::ResourceLimit(_)) => exit_limit(&format!("{strategy}: witness"), &e),
        Err(e) => panic!("{strategy}: witness: {e}"),
    };
    assert_eq!(
        r.reachable,
        schedule.is_some(),
        "{strategy}: witness extraction disagreed with the verdict"
    );
    // The explicit refine/replay searches poll the same token as the
    // symbolic solves: one `--timeout` governs the whole pipeline.
    let conc_limits = ConcLimits { resources: limits.clone(), ..ConcLimits::default() };
    let (explicit_search_states, guided_steps) = match &schedule {
        Some(s) => {
            let rounds = s.to_replay();
            let refined = match conc_refine_schedule(merged, targets, &rounds, conc_limits.clone())
            {
                Ok(r) => r,
                Err(e @ ConcExplicitError::ResourceLimit { .. }) => {
                    exit_limit(&format!("{strategy}: refine"), &e)
                }
                Err(e) => panic!("{strategy}: refine: {e}"),
            }
            .unwrap_or_else(|| panic!("{strategy}: schedule does not refine"));
            match conc_replay_guided(merged, targets, &rounds, &refined.steps, conc_limits) {
                Ok(_) => {}
                Err(e @ ConcExplicitError::ResourceLimit { .. }) => {
                    exit_limit(&format!("{strategy}: guided replay"), &e)
                }
                Err(e) => panic!("{strategy}: guided replay: {e}"),
            }
            (refined.search_states, refined.steps.len())
        }
        None => (0, 0),
    };
    let witness_ms = t1.elapsed().as_secs_f64() * 1e3;
    ConcNumbers {
        reachable: r.reachable,
        solve_ms,
        witness_ms,
        explicit_search_states,
        guided_steps,
        stats: r.stats,
    }
}

/// The quickstart handshake model — the same file the README walkthrough
/// and CI artifacts drive, so the bench measures exactly that program.
const HANDSHAKE: &str = include_str!("../../../../examples/handshake.cbp");

/// The Figure 3 concurrent group: `(name, program, target labels,
/// switches, expected verdict)`. The Bluetooth cases are
/// [`getafix_workloads::FIG3_WITNESS_CASES`] — the thresholds the witness
/// differential suite asserts too.
fn fig3_workloads() -> Vec<(String, getafix_boolprog::ConcProgram, Vec<String>, usize, bool)> {
    use getafix_workloads::{adder_err_label, bluetooth, FIG3_WITNESS_CASES};
    let mut out = Vec::new();
    let handshake = parse_concurrent(HANDSHAKE).expect("handshake parses");
    out.push(("handshake".into(), handshake.clone(), vec!["t0__HIT".into()], 1, true));
    out.push(("handshake".into(), handshake, vec!["t0__HIT".into()], 2, true));
    for (adders, stoppers, k, expect) in FIG3_WITNESS_CASES {
        let labels: Vec<String> = (0..adders).map(adder_err_label).collect();
        out.push((
            format!("bluetooth-{adders}a{stoppers}s"),
            bluetooth(adders, stoppers),
            labels,
            k,
            expect,
        ));
    }
    out
}

/// Runs the Figure 3 concurrent group and returns the `BENCH_fig3.json`
/// payload. Verdicts are asserted against the documented thresholds —
/// a benchmark that measures wrong answers is worthless — and every
/// reachable case must refine and guided-replay.
fn fig3_report(jobs: usize, limits: &ResourceLimits) -> String {
    // The workloads are independent merged systems, so they fan out whole:
    // each worker merges, solves both strategies and runs the witness
    // pipeline on a private manager. Verdict asserts stay inside the
    // workers; the progress lines and the JSON are emitted afterwards in
    // workload order so the report is byte-stable at any job count.
    let rows =
        parallel_map(jobs, fig3_workloads(), |_, (name, program, labels, switches, expect)| {
            let t0 = Instant::now();
            let merged = merge(&program).unwrap_or_else(|e| panic!("{name}: {e}"));
            let merge_ms = t0.elapsed().as_secs_f64() * 1e3;
            let targets: Vec<Pc> = labels
                .iter()
                .map(|l| merged.cfg.label(l).unwrap_or_else(|| panic!("{name}: no label {l}")))
                .collect();
            let wl = run_conc(&merged, &targets, switches, Strategy::Worklist, limits);
            let rr = run_conc(&merged, &targets, switches, Strategy::RoundRobin, limits);
            for (strategy, n) in [("worklist", &wl), ("round-robin", &rr)] {
                assert_eq!(
                    n.reachable, expect,
                    "{name} k={switches} ({strategy}): wrong verdict — a benchmark that \
                 measures wrong answers is worthless"
                );
            }
            (name, switches, expect, merge_ms, wl, rr)
        });
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "getafix-bench-fig3/1");
    w.key("workloads");
    w.begin_array();
    for (name, switches, expect, merge_ms, wl, rr) in rows {
        eprintln!(
            "{name} k={switches}: {} — worklist solve {:.1} ms + witness {:.1} ms \
             (explicit search {} states, guided {} steps), round-robin solve {:.1} ms",
            if expect { "REACHABLE" } else { "unreachable" },
            wl.solve_ms,
            wl.witness_ms,
            wl.explicit_search_states,
            wl.guided_steps,
            rr.solve_ms,
        );
        w.begin_object();
        w.field_str("name", &name);
        w.field_u64("switches", switches as u64);
        w.field_bool("reachable", expect);
        w.field_f64_prec("merge_ms", merge_ms, 3);
        w.key("strategies");
        w.begin_object();
        for (strategy, n) in [("worklist", &wl), ("round-robin", &rr)] {
            w.key(strategy);
            w.begin_object();
            w.field_f64_prec("solve_ms", n.solve_ms, 3);
            w.field_f64_prec("witness_ms", n.witness_ms, 3);
            w.field_u64("reevaluations", n.stats.total_reevaluations() as u64);
            w.field_u64("explicit_search_states", n.explicit_search_states as u64);
            w.field_u64("guided_steps", n.guided_steps as u64);
            w.field_raw("stats", &n.stats.to_json());
            w.end_object();
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let mut json = w.finish();
    json.push('\n');
    json
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_fig2.json".into());
    let fig3_path = flag_value(&args, "--out-fig3").unwrap_or_else(|| "BENCH_fig3.json".into());
    let bdd_path = flag_value(&args, "--out-bdd").unwrap_or_else(|| "BENCH_bdd.json".into());
    let bdd_smoke = args.iter().any(|a| a == "--bdd-smoke");
    let scale: usize = flag_value(&args, "--scale").and_then(|s| s.parse().ok()).unwrap_or(1);
    let bits: usize = flag_value(&args, "--bits").and_then(|s| s.parse().ok()).unwrap_or(3);
    let jobs: usize = resolve_jobs(
        flag_value(&args, "--jobs")
            .or_else(|| std::env::var("GETAFIX_JOBS").ok())
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(1),
    );
    let limits = parse_limits(&args);

    // Kernel microbenches first: they are fast, self-contained and make a
    // kernel regression visible even when a later (solver-level) group
    // panics. `--bdd-smoke` shrinks the state space for CI.
    let bdd = getafix_bench::bdd_kernel::report(bdd_smoke);
    std::fs::write(&bdd_path, &bdd).unwrap_or_else(|e| panic!("{bdd_path}: {e}"));
    eprintln!("wrote {bdd_path}");

    let mut workloads: Vec<(String, Vec<SeqCase>)> = Vec::new();
    let (pos, neg) = regression_cases();
    workloads.push(("regression-positive".into(), pos));
    workloads.push(("regression-negative".into(), neg));
    for (name, cases) in slam_cases(scale) {
        workloads.push((format!("driver-{}", slug(&name)), cases));
    }
    workloads.push((format!("terminator-{bits}bit"), terminator_cases(bits)));
    workloads.push(("dead-baggage".into(), dead_baggage_cases()));

    // `ef` is a monotone fixpoint; `ef-opt` is the non-monotone §4.3
    // system running the ordered change-driven schedule — under the
    // worklist strategy *both* must now show strictly fewer re-evaluations
    // than round-robin, which the guard below enforces on every run.
    let algorithms = [Algorithm::EntryForward, Algorithm::EntryForwardOpt];
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "getafix-bench-fig2/3");
    w.field_u64("driver_scale", scale as u64);
    w.field_u64("terminator_bits", bits as u64);
    w.field_u64("jobs", jobs as u64);
    w.key("workloads");
    w.begin_array();
    let mut guard_failures: Vec<String> = Vec::new();
    for (name, cases) in &workloads {
        for algorithm in algorithms {
            let wl = run_strategy(cases, algorithm, Strategy::Worklist, jobs, &limits);
            let rr = run_strategy(cases, algorithm, Strategy::RoundRobin, jobs, &limits);
            let sl = run_slice(cases, algorithm, jobs, &limits);
            let (wl_re, rr_re) = (wl.stats.total_reevaluations(), rr.stats.total_reevaluations());
            eprintln!(
                "{name} ({algorithm}): {} cases — worklist {:.1} ms / {} re-evals \
                 ({} on ordered schedules), round-robin {:.1} ms / {} re-evals, \
                 sliced {} -> {} BDD vars / {} re-evals ({} relations pruned)",
                cases.len(),
                wl.wall_ms,
                wl_re,
                wl.stats.ordered_reevaluations,
                rr.wall_ms,
                rr_re,
                sl.vars_before,
                sl.vars_after,
                sl.reevaluations,
                sl.relations_pruned
            );
            // The slicer's own guard: on the dead-baggage workload — built
            // of nothing but prunable junk around live kernels — the slice
            // must strictly shrink both the encoded BDD variable count and
            // the worklist re-evaluation count.
            if name == "dead-baggage" {
                if sl.vars_after >= sl.vars_before {
                    guard_failures.push(format!(
                        "{name} ({algorithm}): slicing lost its BDD variable reduction \
                         ({} >= {})",
                        sl.vars_after, sl.vars_before
                    ));
                }
                if sl.reevaluations >= wl_re {
                    guard_failures.push(format!(
                        "{name} ({algorithm}): slicing lost its re-evaluation reduction \
                         ({} >= {wl_re})",
                        sl.reevaluations
                    ));
                }
            }
            // Regression guard: the scheduler must never do more work, and
            // must do *strictly less* on ef-opt — the ordered non-monotone
            // schedule's whole point. (Plain `ef` is a single-relation
            // monotone component, where both strategies run the same
            // rounds; equality is expected there.)
            if wl_re > rr_re {
                guard_failures.push(format!("{name} ({algorithm}): {wl_re} > {rr_re}"));
            } else if algorithm == Algorithm::EntryForwardOpt && wl_re >= rr_re {
                guard_failures.push(format!(
                    "{name} ({algorithm}): ordered schedule lost its strict reduction \
                     ({wl_re} >= {rr_re})"
                ));
            }
            w.begin_object();
            w.field_str("name", name);
            w.field_str("algorithm", &algorithm.to_string());
            w.field_u64("cases", cases.len() as u64);
            w.key("strategies");
            w.begin_object();
            for (strategy, n, re) in [("worklist", &wl, wl_re), ("round-robin", &rr, rr_re)] {
                w.key(strategy);
                w.begin_object();
                w.field_f64_prec("wall_ms", n.wall_ms, 3);
                w.field_u64("reevaluations", re as u64);
                w.field_raw("stats", &n.stats.to_json());
                w.end_object();
            }
            w.end_object();
            // The pre-solve slicer's effect on this workload; the sliced
            // re-evaluations compare against `strategies.worklist`.
            w.key("slice");
            w.begin_object();
            w.field_u64("vars_before", sl.vars_before as u64);
            w.field_u64("vars_after", sl.vars_after as u64);
            w.field_u64("relations_pruned", sl.relations_pruned as u64);
            w.field_u64("reevaluations", sl.reevaluations as u64);
            w.field_f64_prec("wall_ms", sl.wall_ms, 3);
            w.end_object();
            w.end_object();
        }
    }
    w.end_array();
    w.end_object();
    let mut json = w.finish();
    json.push('\n');

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("{out_path}: {e}"));
    eprintln!("wrote {out_path}");

    // Baseline comparison: table + artifact + the wall-clock gate.
    if let Some(baseline_path) = flag_value(&args, "--compare") {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("--compare {baseline_path}: {e}"));
        let cmp = getafix_bench::compare::compare_fig2(&baseline, &json)
            .unwrap_or_else(|e| panic!("--compare: {e}"));
        eprint!("{}", cmp.render());
        let compare_out =
            flag_value(&args, "--compare-out").unwrap_or_else(|| "BENCH_compare.json".into());
        let mut doc = cmp.to_json();
        doc.push('\n');
        std::fs::write(&compare_out, doc).unwrap_or_else(|e| panic!("{compare_out}: {e}"));
        eprintln!("wrote {compare_out}");
        let max_ratio: f64 =
            flag_value(&args, "--max-wall-regress").and_then(|s| s.parse().ok()).unwrap_or(1.25);
        cmp.gate(max_ratio).unwrap_or_else(|e| panic!("{e}"));
    }

    // `--skip-fig3` leaves the previous fig3 report untouched — handy when
    // iterating on the sequential kernel/scheduler only.
    if !args.iter().any(|a| a == "--skip-fig3") {
        let fig3 = fig3_report(jobs, &limits);
        std::fs::write(&fig3_path, &fig3).unwrap_or_else(|e| panic!("{fig3_path}: {e}"));
        eprintln!("wrote {fig3_path}");
    }

    assert!(
        guard_failures.is_empty(),
        "worklist scheduling regressed (no strict re-evaluation reduction) on:\n  {}",
        guard_failures.join("\n  ")
    );
}

/// Lower-cased, space-free workload slug for stable JSON names.
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
        .collect()
}
