//! Machine-readable benchmark report: runs the Figure 2 workload families
//! under both solver strategies and writes `BENCH_fig2.json` — per-workload
//! wall times and relation re-evaluation counts — so the performance
//! trajectory of the scheduler can be tracked across commits by tooling
//! instead of eyeballs.
//!
//! ```text
//! cargo run --release -p getafix-bench --bin bench-report [-- --out PATH] [--scale N] [--bits N]
//! ```
//!
//! The JSON is hand-rolled (the workspace builds offline, without serde),
//! and every per-strategy entry embeds the solver's own
//! [`SolveStats::to_json`] serialization — the same object `getafix …
//! --stats-json` prints — so this reporter *consumes* solver statistics
//! instead of re-deriving numbers:
//!
//! ```json
//! {
//!   "schema": "getafix-bench-fig2/2",
//!   "workloads": [
//!     { "name": "regression-positive", "cases": 9, "algorithm": "ef-opt",
//!       "strategies": {
//!         "worklist":    { "wall_ms": 12.3, "reevaluations": 150, "stats": { … } },
//!         "round-robin": { "wall_ms": 45.6, "reevaluations": 510, "stats": { … } } } },
//!     …
//!   ]
//! }
//! ```

use getafix_bench::{regression_cases, slam_cases, terminator_cases, SeqCase};
use getafix_boolprog::Cfg;
use getafix_core::{check_reachability_with, Algorithm};
use getafix_mucalc::{SolveOptions, SolveStats, Strategy};
use std::fmt::Write as _;
use std::time::Instant;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// One strategy's aggregate over a workload: wall time plus the absorbed
/// solver statistics of every case.
struct StrategyNumbers {
    wall_ms: f64,
    stats: SolveStats,
}

fn run_strategy(cases: &[SeqCase], algorithm: Algorithm, strategy: Strategy) -> StrategyNumbers {
    let t0 = Instant::now();
    let mut stats = SolveStats::default();
    for case in cases {
        let cfg = Cfg::build(&case.program).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let pc = cfg
            .label(&case.label)
            .unwrap_or_else(|| panic!("{}: no label {}", case.name, case.label));
        let r =
            check_reachability_with(&cfg, &[pc], algorithm, SolveOptions::with_strategy(strategy))
                .unwrap_or_else(|e| panic!("{} ({strategy}): {e}", case.name));
        assert_eq!(
            r.reachable, case.expect,
            "{} ({strategy}): wrong verdict — a benchmark that measures wrong answers is worthless",
            case.name
        );
        stats.absorb(&r.stats);
    }
    StrategyNumbers { wall_ms: t0.elapsed().as_secs_f64() * 1e3, stats }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_fig2.json".into());
    let scale: usize = flag_value(&args, "--scale").and_then(|s| s.parse().ok()).unwrap_or(1);
    let bits: usize = flag_value(&args, "--bits").and_then(|s| s.parse().ok()).unwrap_or(3);

    let mut workloads: Vec<(String, Vec<SeqCase>)> = Vec::new();
    let (pos, neg) = regression_cases();
    workloads.push(("regression-positive".into(), pos));
    workloads.push(("regression-negative".into(), neg));
    for (name, cases) in slam_cases(scale) {
        workloads.push((format!("driver-{}", slug(&name)), cases));
    }
    workloads.push((format!("terminator-{bits}bit"), terminator_cases(bits)));

    // `ef` is a monotone fixpoint; `ef-opt` is the non-monotone §4.3
    // system running the ordered change-driven schedule — under the
    // worklist strategy *both* must now show strictly fewer re-evaluations
    // than round-robin, which the guard below enforces on every run.
    let algorithms = [Algorithm::EntryForward, Algorithm::EntryForwardOpt];
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"getafix-bench-fig2/2\",\n");
    let _ = writeln!(json, "  \"driver_scale\": {scale},");
    let _ = writeln!(json, "  \"terminator_bits\": {bits},");
    json.push_str("  \"workloads\": [\n");
    let total = workloads.len() * algorithms.len();
    let mut emitted = 0usize;
    let mut guard_failures: Vec<String> = Vec::new();
    for (name, cases) in &workloads {
        for algorithm in algorithms {
            let wl = run_strategy(cases, algorithm, Strategy::Worklist);
            let rr = run_strategy(cases, algorithm, Strategy::RoundRobin);
            let (wl_re, rr_re) = (wl.stats.total_reevaluations(), rr.stats.total_reevaluations());
            emitted += 1;
            eprintln!(
                "{name} ({algorithm}): {} cases — worklist {:.1} ms / {} re-evals \
                 ({} on ordered schedules), round-robin {:.1} ms / {} re-evals",
                cases.len(),
                wl.wall_ms,
                wl_re,
                wl.stats.ordered_reevaluations,
                rr.wall_ms,
                rr_re
            );
            // Regression guard: the scheduler must never do more work, and
            // must do *strictly less* on ef-opt — the ordered non-monotone
            // schedule's whole point. (Plain `ef` is a single-relation
            // monotone component, where both strategies run the same
            // rounds; equality is expected there.)
            if wl_re > rr_re {
                guard_failures.push(format!("{name} ({algorithm}): {wl_re} > {rr_re}"));
            } else if algorithm == Algorithm::EntryForwardOpt && wl_re >= rr_re {
                guard_failures.push(format!(
                    "{name} ({algorithm}): ordered schedule lost its strict reduction \
                     ({wl_re} >= {rr_re})"
                ));
            }
            let _ = writeln!(
                json,
                "    {{ \"name\": \"{name}\", \"algorithm\": \"{algorithm}\", \"cases\": {},",
                cases.len()
            );
            json.push_str("      \"strategies\": {\n");
            let _ = writeln!(
                json,
                "        \"worklist\": {{ \"wall_ms\": {:.3}, \"reevaluations\": {}, \
                 \"stats\": {} }},",
                wl.wall_ms,
                wl_re,
                wl.stats.to_json()
            );
            let _ = writeln!(
                json,
                "        \"round-robin\": {{ \"wall_ms\": {:.3}, \"reevaluations\": {}, \
                 \"stats\": {} }} }} }}{}",
                rr.wall_ms,
                rr_re,
                rr.stats.to_json(),
                if emitted < total { "," } else { "" }
            );
        }
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("{out_path}: {e}"));
    eprintln!("wrote {out_path}");
    assert!(
        guard_failures.is_empty(),
        "worklist scheduling regressed (no strict re-evaluation reduction) on:\n  {}",
        guard_failures.join("\n  ")
    );
}

/// Lower-cased, space-free workload slug for stable JSON names.
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
        .collect()
}
