//! Concurrent ablation (DESIGN.md E6): the cost of the context-switch bound.
//!
//! §5's headline is that the `Reach` tuple keeps only **k + 1 copies** of
//! the shared globals (the switch-point valuations `g1..gk` plus the
//! current one), where the eager Lal–Reps reduction needs up to **3k**.
//! This ablation (a) reports the measured growth of the BDD variable
//! count, the `Reach` relation and the solve time as `k` increases, and
//! (b) tabulates the analytic copy-count comparison. The eager engine
//! itself is not implemented (see DESIGN.md).
//!
//! ```text
//! cargo run --release -p getafix-bench --bin ablation_conc [-- --max-k K]
//! ```

use getafix_bench::run_fig3_config;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_k: usize = args
        .iter()
        .position(|a| a == "--max-k")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    println!("E6 — global-copy economy of the §5 formulation (Bluetooth, 2 adders + 2 stoppers)\n");
    let (merged, rows) = run_fig3_config(2, 2, max_k);
    let g = merged.cfg.globals.len();
    println!(
        "{:>3} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "k", "ours: copies", "Lal-Reps: 3k", "Reach tuples", "BDD nodes", "time"
    );
    for r in rows {
        let k = r.switches;
        println!(
            "{:>3} {:>7} ({:>3}b) {:>7} ({:>3}b) {:>11.1}k {:>12} {:>9.2}s",
            k,
            k + 1,
            (k + 1) * g,
            3 * k,
            3 * k * g,
            r.reach_tuples / 1e3,
            r.reach_nodes,
            r.time.as_secs_f64()
        );
    }
    println!(
        "\n(copies × {g} shared globals = bits of global state carried per tuple; \
         the k+1 column is what the measured engine allocates)"
    );
}
