//! Regenerates Figure 3: bounded context-switching reachability on the
//! Bluetooth driver model — four thread configurations, switch bounds
//! 1..=6, reporting verdict, `Reach` set size and time.
//!
//! ```text
//! cargo run --release -p getafix-bench --bin fig3 [-- --max-k K] [--jobs N]
//! ```
//!
//! `--jobs N` (default 1; env fallback `GETAFIX_JOBS`; 0 = all cores)
//! fans the independent switch-bound solves of each configuration across
//! a worker pool — every bound owns a private BDD manager, so the table
//! is identical at any job count, only faster.

use getafix_bench::run_fig3_config_jobs;
use getafix_workloads::FIGURE3_CONFIGS;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_k: usize = args
        .iter()
        .position(|a| a == "--max-k")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("GETAFIX_JOBS").ok())
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1);

    println!("Figure 3 — Bluetooth driver, bounded context-switching reachability\n");
    println!("{:<9} {:<10} {:<14} {:<10} Time", "Context", "Reachable", "Reach set", "BDD");
    println!("{:<9} {:<10} {:<14} {:<10}", "switches", "", "size", "nodes");
    for &(name, adders, stoppers) in &FIGURE3_CONFIGS {
        let (merged, rows) = run_fig3_config_jobs(adders, stoppers, max_k, jobs);
        let locals: usize = merged.cfg.procs.iter().map(|p| p.n_locals()).sum();
        println!(
            "\n{} processes: {name}\n({} local variables and {} shared variables)",
            adders + stoppers,
            locals,
            merged.cfg.globals.len()
        );
        for r in rows {
            println!(
                "   {:<6} {:<10} {:>9.1}k {:>11} {:>9.2}s",
                r.switches,
                if r.reachable { "Yes" } else { "No" },
                r.reach_tuples / 1e3,
                r.reach_nodes,
                r.time.as_secs_f64()
            );
        }
    }
}
