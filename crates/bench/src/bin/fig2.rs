//! Regenerates Figure 2: the sequential evaluation table — Regression,
//! SLAM-driver and Terminator suites against GETAFIX (EF, EF-opt) and the
//! hand-coded baselines (forward/backward PDS saturation, Bebop worklist).
//!
//! ```text
//! cargo run --release -p getafix-bench --bin fig2 [-- --suite regression|slam|terminator] [--scale N] [--bits N]
//! ```
//!
//! Absolute times are incomparable to the 2009 testbed; the *shape* —
//! which engine wins where, and by what rough factor — is the result.

use getafix_bench::{
    print_fig2_header, print_fig2_row, regression_cases, run_fig2_row, slam_cases, terminator_cases,
};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite = flag_value(&args, "--suite").unwrap_or_else(|| "all".into());
    let scale: usize = flag_value(&args, "--scale").and_then(|s| s.parse().ok()).unwrap_or(1);
    let bits: usize = flag_value(&args, "--bits").and_then(|s| s.parse().ok()).unwrap_or(4);

    println!("Figure 2 — sequential reachability (averages per suite)");
    println!("driver scale = {scale}, terminator counter bits = {bits}\n");
    print_fig2_header();

    if suite == "all" || suite == "regression" {
        let (pos, neg) = regression_cases();
        print_fig2_row(&run_fig2_row("Regression positive", &pos));
        print_fig2_row(&run_fig2_row("Regression negative", &neg));
    }
    if suite == "all" || suite == "slam" {
        for (name, cases) in slam_cases(scale) {
            print_fig2_row(&run_fig2_row(&format!("Driver {name}"), &cases));
        }
    }
    if suite == "all" || suite == "terminator" {
        for case in terminator_cases(bits) {
            let name = case.name.clone();
            print_fig2_row(&run_fig2_row(&name, std::slice::from_ref(&case)));
        }
    }
}
