//! Sequential ablations (DESIGN.md E7, E8):
//!
//! * **E7** — the §4.2 return-clause rewrite: split form vs the naive
//!   single-conjunction form, on state-rich Terminator workloads where the
//!   summary-set BDDs are large.
//! * **E8** — §4.1 vs §4.2: the simple (all-entries) summary algorithm
//!   against the entry-forward family, on driver workloads with genuinely
//!   unreachable procedures.
//!
//! ```text
//! cargo run --release -p getafix-bench --bin ablation_seq [-- --bits N]
//! ```

use getafix_boolprog::Cfg;
use getafix_core::{check_reachability, Algorithm};
use getafix_workloads::{driver, terminator, DeadStyle, DriverSpec, TerminatorVariant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bits: usize = args
        .iter()
        .position(|a| a == "--bits")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    println!(
        "E7 — return-clause rewrite (split vs naive), Terminator workloads, {bits}-bit counters\n"
    );
    println!("{:<34} {:>10} {:>10} {:>10} {:>8}", "case", "naive", "split", "ef-opt", "speedup");
    for variant in [TerminatorVariant::A, TerminatorVariant::B, TerminatorVariant::C] {
        for style in [DeadStyle::Iterative, DeadStyle::Schoose] {
            let case = terminator(variant, style, bits);
            let cfg = Cfg::build(&case.program).expect("cfg");
            let pc = cfg.label(&case.label).expect("label");
            let naive =
                check_reachability(&cfg, &[pc], Algorithm::EntryForwardNaive).expect("naive");
            let split = check_reachability(&cfg, &[pc], Algorithm::EntryForward).expect("split");
            let opt = check_reachability(&cfg, &[pc], Algorithm::EntryForwardOpt).expect("opt");
            assert_eq!(naive.reachable, case.expect_reachable);
            assert_eq!(split.reachable, case.expect_reachable);
            assert_eq!(opt.reachable, case.expect_reachable);
            let tn = naive.solve_time.as_secs_f64();
            let ts = split.solve_time.as_secs_f64();
            let to = opt.solve_time.as_secs_f64();
            println!(
                "{:<34} {:>8.0}ms {:>8.0}ms {:>8.0}ms {:>7.2}x",
                case.name,
                tn * 1e3,
                ts * 1e3,
                to * 1e3,
                tn / ts.max(1e-9)
            );
        }
    }

    println!("\nE8 — eager all-entries summaries (§4.1) vs entry-forward (§4.2), drivers with unreachable procedures\n");
    println!("{:<22} {:>10} {:>10} {:>10}", "case", "simple", "ef", "ef-opt");
    for (i, positive) in [false, true].into_iter().enumerate() {
        let case = driver(
            &format!("ablation-{i}"),
            DriverSpec { handlers: 5, globals: 4, locals: 6, filler: 4, positive, seed: 0xAB1 },
        );
        let cfg = Cfg::build(&case.program).expect("cfg");
        let pc = cfg.label(&case.label).expect("label");
        let simple = check_reachability(&cfg, &[pc], Algorithm::SummarySimple).expect("simple");
        let ef = check_reachability(&cfg, &[pc], Algorithm::EntryForward).expect("ef");
        let opt = check_reachability(&cfg, &[pc], Algorithm::EntryForwardOpt).expect("opt");
        assert_eq!(simple.reachable, case.expect_reachable);
        assert_eq!(ef.reachable, case.expect_reachable);
        assert_eq!(opt.reachable, case.expect_reachable);
        println!(
            "{:<22} {:>8.0}ms {:>8.0}ms {:>8.0}ms   (reachable: {})",
            case.name,
            simple.solve_time.as_secs_f64() * 1e3,
            ef.solve_time.as_secs_f64() * 1e3,
            opt.solve_time.as_secs_f64() * 1e3,
            case.expect_reachable
        );
    }
}
