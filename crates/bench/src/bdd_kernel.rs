//! The `bdd-kernel` microbench group: drives the `getafix-bdd` kernel
//! directly — no solver, no programs — on the operation mix every fixpoint
//! bottoms out in (`and_exists` image chains, fused `rename_and_exists`
//! images, GC churn) and reports kernel-level throughput: nodes/second,
//! cache hit rates and peak arena bytes. `bench-report` writes the results
//! as `BENCH_bdd.json` so kernel regressions are attributable separately
//! from scheduler regressions.

use getafix_bdd::{Bdd, Manager, ManagerStats, Var, VarMap};
use getafix_telemetry::json::{rate_per_sec, JsonWriter};
use std::time::Instant;

/// One microbench result.
pub struct KernelBench {
    pub name: &'static str,
    pub wall_ms: f64,
    /// Fixpoint/build rounds executed.
    pub rounds: usize,
    /// Arena nodes at the end of the run.
    pub final_nodes: usize,
    /// Nodes allocated per second (peak arena + reclaimed, over wall time).
    pub nodes_per_sec: f64,
    pub stats: ManagerStats,
}

impl KernelBench {
    fn from_run(
        name: &'static str,
        rounds: usize,
        reclaimed: usize,
        t0: Instant,
        m: &Manager,
    ) -> KernelBench {
        let wall = t0.elapsed().as_secs_f64();
        let stats = m.stats();
        // Peak live arena plus everything GC gave back approximates total
        // allocation traffic.
        let allocated = stats.peak_nodes + reclaimed;
        KernelBench {
            name,
            wall_ms: wall * 1e3,
            rounds,
            final_nodes: stats.nodes,
            nodes_per_sec: rate_per_sec(allocated as f64, wall),
            stats,
        }
    }

    fn hit_rate(&self) -> f64 {
        let total = self.stats.cache_hits + self.stats.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.stats.cache_hits as f64 / total as f64
        }
    }
}

/// Interleaved current/next state variables: `cur[i]` at level `2i`,
/// `next[i]` at level `2i + 1` — the allocation pattern the solver uses.
fn state_vars(m: &mut Manager, bits: usize) -> (Vec<Var>, Vec<Var>) {
    let all = m.new_vars(2 * bits);
    let cur = (0..bits).map(|i| all[2 * i]).collect();
    let next = (0..bits).map(|i| all[2 * i + 1]).collect();
    (cur, next)
}

/// The relation `next == cur + c (mod 2^bits)` via a symbolic ripple-carry
/// adder.
fn add_const_relation(m: &mut Manager, cur: &[Var], next: &[Var], c: u64) -> Bdd {
    let mut carry = Bdd::FALSE;
    let mut rel = Bdd::TRUE;
    for i in 0..cur.len() {
        let a = m.var(cur[i]);
        let cbit = m.constant((c >> i) & 1 == 1);
        let ax = m.xor(a, cbit);
        let sum = m.xor(ax, carry);
        // carry' = (a ∧ c) ∨ (carry ∧ (a ⊕ c))
        let ac = m.and(a, cbit);
        let ca = m.and(carry, ax);
        carry = m.or(ac, ca);
        let n = m.var(next[i]);
        let eq = m.iff(n, sum);
        rel = m.and(rel, eq);
    }
    rel
}

/// The relation `next == cur ^ k`.
fn xor_const_relation(m: &mut Manager, cur: &[Var], next: &[Var], k: u64) -> Bdd {
    let mut rel = Bdd::TRUE;
    for i in 0..cur.len() {
        let a = m.var(cur[i]);
        let kbit = m.constant((k >> i) & 1 == 1);
        let flipped = m.xor(a, kbit);
        let n = m.var(next[i]);
        let eq = m.iff(n, flipped);
        rel = m.and(rel, eq);
    }
    rel
}

/// A transition relation with frontier-doubling reach: jumps of every
/// power of two plus a couple of xor edges, so symbolic BFS from 0 covers
/// the space in ~`bits` rounds with large, structured frontiers.
fn transition(m: &mut Manager, cur: &[Var], next: &[Var]) -> Bdd {
    let bits = cur.len();
    let mut t = Bdd::FALSE;
    for k in 0..bits {
        let step = add_const_relation(m, cur, next, 1u64 << k);
        t = m.or(t, step);
    }
    for k in [0xA5A5_A5A5_A5A5_A5A5u64, 0x3333_3333_3333_3333u64] {
        let mask = k & ((1u64 << bits) - 1);
        let step = xor_const_relation(m, cur, next, mask);
        t = m.or(t, step);
    }
    t
}

/// The state `value` over the given variable block, as a minterm.
fn minterm(m: &mut Manager, vars: &[Var], value: u64) -> Bdd {
    let mut f = Bdd::TRUE;
    for (i, &v) in vars.iter().enumerate() {
        let lit = m.literal(v, (value >> i) & 1 == 1);
        f = m.and(f, lit);
    }
    f
}

/// Symbolic BFS using `and_exists` for the image and a separate rename to
/// pull the frontier back onto the current-state block.
fn bench_and_exists_image(bits: usize) -> KernelBench {
    let mut m = Manager::with_capacity(1 << 16);
    let (cur, next) = state_vars(&mut m, bits);
    let t = transition(&mut m, &cur, &next);
    let cube = m.cube(&cur);
    let back = VarMap::new(next.iter().copied().zip(cur.iter().copied()));
    let t0 = Instant::now();
    let mut reach = minterm(&mut m, &cur, 0);
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let img_next = m.and_exists(reach, t, cube);
        let img = m.rename(img_next, &back);
        let grown = m.or(reach, img);
        if grown == reach {
            break;
        }
        reach = grown;
    }
    KernelBench::from_run("and-exists-image", rounds, 0, t0, &m)
}

/// The same BFS with the fused image: the frontier lives on the next-state
/// block and `rename_and_exists` renames it onto the current block,
/// conjoins the transition and quantifies — one traversal, the solver's
/// `compile_app` hot path.
fn bench_rename_and_exists_image(bits: usize) -> KernelBench {
    let mut m = Manager::with_capacity(1 << 16);
    let (cur, next) = state_vars(&mut m, bits);
    let t = transition(&mut m, &cur, &next);
    let cube = m.cube(&cur);
    // next[i] (level 2i+1) → cur[i] (level 2i): strictly order-preserving,
    // so the fused single-traversal fast path is exercised.
    let onto_cur = VarMap::new(next.iter().copied().zip(cur.iter().copied()));
    let t0 = Instant::now();
    let mut reach = minterm(&mut m, &next, 0);
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let img = m.rename_and_exists(reach, &onto_cur, t, cube);
        let grown = m.or(reach, img);
        if grown == reach {
            break;
        }
        reach = grown;
    }
    KernelBench::from_run("rename-and-exists-image", rounds, 0, t0, &m)
}

/// GC churn: rounds of building transient structure around one live
/// accumulator, collecting after every round — measures mark/copy/rebuild
/// throughput and that the generation-stamped caches make `clear` free.
fn bench_gc_churn(bits: usize, rounds: usize) -> KernelBench {
    let mut m = Manager::with_capacity(1 << 14);
    let vars = m.new_vars(bits);
    let t0 = Instant::now();
    let mut live = Bdd::FALSE;
    let mut reclaimed = 0usize;
    for round in 0..rounds {
        // Transient garbage: xor/adder ladders offset by the round number.
        let mut junk = Bdd::TRUE;
        for i in 0..bits - 1 {
            let a = m.var(vars[(i + round) % bits]);
            let b = m.var(vars[(i + 1) % bits]);
            let x = m.xor(a, b);
            let o = m.or(x, junk);
            junk = m.and(o, a);
        }
        let keep = m.xor(live, junk);
        live = keep;
        let result = m.gc(&[live]);
        reclaimed += result.reclaimed();
        live = result.roots[0];
    }
    KernelBench::from_run("gc-churn", rounds, reclaimed, t0, &m)
}

/// Runs the group. `smoke` shrinks the state space so CI finishes in
/// milliseconds while still touching every code path.
pub fn run_group(smoke: bool) -> Vec<KernelBench> {
    let bits = if smoke { 10 } else { 20 };
    let churn_rounds = if smoke { 50 } else { 400 };
    vec![
        bench_and_exists_image(bits),
        bench_rename_and_exists_image(bits),
        bench_gc_churn(if smoke { 16 } else { 28 }, churn_rounds),
    ]
}

/// Renders the group as the `BENCH_bdd.json` payload.
pub fn report(smoke: bool) -> String {
    let benches = run_group(smoke);
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "getafix-bench-bdd/1");
    w.field_bool("smoke", smoke);
    w.key("benches");
    w.begin_array();
    for b in &benches {
        eprintln!(
            "bdd-kernel/{}: {:.1} ms — {} rounds, {:.0} nodes/s, {:.1}% cache hits, \
             peak arena {} bytes",
            b.name,
            b.wall_ms,
            b.rounds,
            b.nodes_per_sec,
            100.0 * b.hit_rate(),
            b.stats.peak_arena_bytes
        );
        w.begin_object();
        w.field_str("name", b.name);
        w.field_f64_prec("wall_ms", b.wall_ms, 3);
        w.field_u64("rounds", b.rounds as u64);
        w.field_u64("final_nodes", b.final_nodes as u64);
        w.field_u64("peak_nodes", b.stats.peak_nodes as u64);
        w.field_f64_prec("nodes_per_sec", b.nodes_per_sec, 0);
        w.field_u64("cache_hits", b.stats.cache_hits);
        w.field_u64("cache_misses", b.stats.cache_misses);
        w.field_f64_prec("cache_hit_rate", b.hit_rate(), 4);
        w.field_u64("peak_arena_bytes", b.stats.peak_arena_bytes as u64);
        w.field_u64("gcs", b.stats.gcs);
        w.field_f64_prec("gc_pause_ms", b.stats.gc_pause_ms, 3);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let mut json = w.finish();
    json.push('\n');
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_group_runs_and_reports() {
        let benches = run_group(true);
        assert_eq!(benches.len(), 3);
        for b in &benches {
            assert!(b.rounds > 0, "{}: no rounds", b.name);
            assert!(b.nodes_per_sec > 0.0, "{}: no throughput", b.name);
            assert!(b.stats.peak_arena_bytes > 0, "{}: no arena bytes", b.name);
        }
        // The image chains cover the whole space in ~bits rounds.
        assert!(benches[0].rounds <= 16, "frontier doubling lost");
        // Both image strategies explore the same system: identical final
        // reachable-set size ⇒ comparable workloads.
        assert!(benches[2].stats.gcs >= 50, "gc churn must collect every round");
    }

    #[test]
    fn report_is_valid_json() {
        let json = report(true);
        let v = getafix_telemetry::json::parse(&json).expect("BENCH_bdd.json parses");
        assert_eq!(
            v.get("schema").and_then(getafix_telemetry::json::Value::as_str),
            Some("getafix-bench-bdd/1")
        );
        let benches = v.get("benches").and_then(getafix_telemetry::json::Value::as_array).unwrap();
        assert_eq!(benches.len(), 3);
        for b in benches {
            // The gc-churn bench collects every round, so its pause total
            // must be visible; the shared rate guard keeps nodes/s finite.
            assert!(b.get("nodes_per_sec").and_then(|n| n.as_f64()).unwrap() >= 0.0);
            assert!(b.get("gc_pause_ms").and_then(|n| n.as_f64()).unwrap() >= 0.0);
        }
    }

    #[test]
    fn image_strategies_agree_on_the_reachable_set() {
        // Cross-check: the two BFS variants must converge after the same
        // number of rounds (same frontier sequence, different kernels).
        let a = bench_and_exists_image(8);
        let b = bench_rename_and_exists_image(8);
        assert_eq!(a.rounds, b.rounds);
    }
}
