//! Baseline comparison for `BENCH_fig2.json` reports: per-workload deltas
//! of wall time, re-evaluations, BDD cache hit rate and peak arena, plus
//! the wall-clock regression gate CI enforces.
//!
//! `bench-report --compare BASELINE.json` replaces the ad-hoc "total wall
//! within 25%" scripting this repository used to carry in CI YAML: the
//! comparison is computed here, printed as a per-workload table, exported
//! as `BENCH_compare.json` (`schema: getafix-bench-compare/1`) and gated
//! in one place. Workloads are matched by `(name, algorithm)`; fields a
//! baseline from an older schema does not carry are simply absent from
//! that row's deltas rather than an error, so the committed baseline never
//! has to move in lock-step with the stats schema.

use getafix_telemetry::json::{parse, JsonWriter, Value};
use std::fmt::Write as _;

/// One strategy's numbers for one workload, as read from a report. All
/// fields beyond wall time are optional — older baselines may predate
/// them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkloadNumbers {
    pub wall_ms: f64,
    pub reevaluations: Option<u64>,
    /// BDD computed-cache hit rate in `[0, 1]`, from the embedded stats.
    pub cache_hit_rate: Option<f64>,
    /// Peak BDD arena footprint in bytes, from the embedded stats.
    pub peak_arena_bytes: Option<u64>,
}

/// One matched workload: the baseline and current worklist-strategy
/// numbers side by side.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadDelta {
    pub name: String,
    pub algorithm: String,
    pub base: WorkloadNumbers,
    pub cur: WorkloadNumbers,
}

impl WorkloadDelta {
    /// Current wall time over baseline wall time (`> 1` = slower).
    pub fn wall_ratio(&self) -> f64 {
        if self.base.wall_ms > 0.0 {
            self.cur.wall_ms / self.base.wall_ms
        } else {
            1.0
        }
    }
}

/// The result of comparing two fig2 reports.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Workloads present in both reports, baseline order.
    pub rows: Vec<WorkloadDelta>,
    /// `name (algorithm)` keys only the baseline has.
    pub only_baseline: Vec<String>,
    /// `name (algorithm)` keys only the current report has.
    pub only_current: Vec<String>,
}

impl Comparison {
    /// Total worklist wall time over the **matched** workloads, baseline
    /// and current — the gate's numerator/denominator. Matching first
    /// keeps an added or removed workload from masquerading as a speedup
    /// or regression.
    pub fn total_wall_ms(&self) -> (f64, f64) {
        let base = self.rows.iter().map(|r| r.base.wall_ms).sum();
        let cur = self.rows.iter().map(|r| r.cur.wall_ms).sum();
        (base, cur)
    }

    /// Current total wall over baseline total wall (`> 1` = slower).
    pub fn wall_ratio(&self) -> f64 {
        let (base, cur) = self.total_wall_ms();
        if base > 0.0 {
            cur / base
        } else {
            1.0
        }
    }

    /// The regression gate: total matched worklist wall time must not
    /// exceed `max_ratio` × baseline (CI uses 1.25 — runner noise aside,
    /// a >25% slowdown must not land silently).
    ///
    /// # Errors
    ///
    /// A message with both totals and the ratio.
    pub fn gate(&self, max_ratio: f64) -> Result<(), String> {
        if self.rows.is_empty() {
            return Err("no workloads matched between baseline and current report".into());
        }
        let (base, cur) = self.total_wall_ms();
        let ratio = self.wall_ratio();
        if ratio > max_ratio {
            return Err(format!(
                "fig2 worklist wall time regressed: {cur:.1} ms vs baseline {base:.1} ms \
                 ({ratio:.2}x > {max_ratio:.2}x allowed)"
            ));
        }
        Ok(())
    }

    /// The human per-workload delta table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .rows
            .iter()
            .map(|r| r.name.len() + r.algorithm.len() + 3)
            .chain([24])
            .max()
            .unwrap_or(24);
        let _ = writeln!(
            out,
            "{:<name_w$} {:>18} {:>7} {:>16} {:>13} {:>15}",
            "workload", "wall ms", "Δ wall", "re-evals", "cache hit %", "peak arena MiB"
        );
        for r in &self.rows {
            let label = format!("{} ({})", r.name, r.algorithm);
            let wall = format!("{:.1} → {:.1}", r.base.wall_ms, r.cur.wall_ms);
            let dwall = format!("{:+.0}%", (r.wall_ratio() - 1.0) * 100.0);
            let opt_pair = |b: Option<u64>, c: Option<u64>, scale: f64, prec: usize| match (b, c) {
                (Some(b), Some(c)) => {
                    format!("{:.prec$} → {:.prec$}", b as f64 / scale, c as f64 / scale)
                }
                _ => "-".into(),
            };
            let reevals = opt_pair(r.base.reevaluations, r.cur.reevaluations, 1.0, 0);
            let hit = match (r.base.cache_hit_rate, r.cur.cache_hit_rate) {
                (Some(b), Some(c)) => format!("{:.1} → {:.1}", b * 100.0, c * 100.0),
                _ => "-".into(),
            };
            let arena =
                opt_pair(r.base.peak_arena_bytes, r.cur.peak_arena_bytes, 1024.0 * 1024.0, 1);
            let _ = writeln!(
                out,
                "{label:<name_w$} {wall:>18} {dwall:>7} {reevals:>16} {hit:>13} {arena:>15}"
            );
        }
        for key in &self.only_baseline {
            let _ = writeln!(out, "{key:<name_w$} only in baseline");
        }
        for key in &self.only_current {
            let _ = writeln!(out, "{key:<name_w$} only in current report");
        }
        let (base, cur) = self.total_wall_ms();
        let _ = writeln!(
            out,
            "total worklist wall (matched): {base:.1} → {cur:.1} ms ({:.2}x)",
            self.wall_ratio()
        );
        out
    }

    /// The machine-readable comparison (`schema: getafix-bench-compare/1`),
    /// uploaded as a CI artifact next to the reports it compares.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "getafix-bench-compare/1");
        let (base, cur) = self.total_wall_ms();
        w.field_f64_prec("baseline_wall_ms", base, 3);
        w.field_f64_prec("current_wall_ms", cur, 3);
        w.field_f64_prec("wall_ratio", self.wall_ratio(), 4);
        w.key("workloads");
        w.begin_array();
        for r in &self.rows {
            w.begin_object();
            w.field_str("name", &r.name);
            w.field_str("algorithm", &r.algorithm);
            w.field_f64_prec("wall_ratio", r.wall_ratio(), 4);
            for (side, n) in [("baseline", &r.base), ("current", &r.cur)] {
                w.key(side);
                w.begin_object();
                w.field_f64_prec("wall_ms", n.wall_ms, 3);
                if let Some(v) = n.reevaluations {
                    w.field_u64("reevaluations", v);
                }
                if let Some(v) = n.cache_hit_rate {
                    w.field_f64_prec("cache_hit_rate", v, 4);
                }
                if let Some(v) = n.peak_arena_bytes {
                    w.field_u64("peak_arena_bytes", v);
                }
                w.end_object();
            }
            w.end_object();
        }
        w.end_array();
        w.key("only_baseline");
        w.begin_array();
        for k in &self.only_baseline {
            w.value_str(k);
        }
        w.end_array();
        w.key("only_current");
        w.begin_array();
        for k in &self.only_current {
            w.value_str(k);
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// Reads one workload entry's worklist-strategy numbers.
fn numbers(workload: &Value) -> Option<WorkloadNumbers> {
    let wl = workload.get("strategies")?.get("worklist")?;
    let wall_ms = wl.get("wall_ms").and_then(Value::as_f64)?;
    let stats = wl.get("stats");
    let stat_u64 =
        |key: &str| stats.and_then(|s| s.get(key)).and_then(Value::as_f64).map(|v| v as u64);
    let cache_hit_rate = match (stat_u64("cache_hits"), stat_u64("cache_misses")) {
        (Some(h), Some(m)) if h + m > 0 => Some(h as f64 / (h + m) as f64),
        _ => None,
    };
    Some(WorkloadNumbers {
        wall_ms,
        reevaluations: wl.get("reevaluations").and_then(Value::as_f64).map(|v| v as u64),
        cache_hit_rate,
        peak_arena_bytes: stat_u64("peak_arena_bytes"),
    })
}

/// Parses one report into `(key, label, numbers)` rows, keyed by
/// `(name, algorithm)` — the algorithm defaults to `""` for pre-/2
/// baselines that did not record it.
fn report_rows(doc: &str, which: &str) -> Result<Vec<(String, String, WorkloadNumbers)>, String> {
    let v = parse(doc).map_err(|e| format!("{which} report does not parse: {e}"))?;
    let workloads = v
        .get("workloads")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{which} report has no workloads array"))?;
    let mut rows = Vec::new();
    for w in workloads {
        let name = w
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{which} report: workload without a name"))?;
        let algorithm = w.get("algorithm").and_then(Value::as_str).unwrap_or("");
        if let Some(n) = numbers(w) {
            rows.push((name.to_string(), algorithm.to_string(), n));
        }
    }
    Ok(rows)
}

/// Compares two `BENCH_fig2.json` documents (baseline first).
///
/// # Errors
///
/// When either document does not parse or lacks a workloads array.
pub fn compare_fig2(baseline: &str, current: &str) -> Result<Comparison, String> {
    let base_rows = report_rows(baseline, "baseline")?;
    let cur_rows = report_rows(current, "current")?;
    let key = |name: &str, algo: &str| {
        if algo.is_empty() {
            name.to_string()
        } else {
            format!("{name} ({algo})")
        }
    };
    let mut cmp = Comparison::default();
    for (name, algo, base) in &base_rows {
        match cur_rows.iter().find(|(n, a, _)| n == name && a == algo) {
            Some((_, _, cur)) => cmp.rows.push(WorkloadDelta {
                name: name.clone(),
                algorithm: algo.clone(),
                base: base.clone(),
                cur: cur.clone(),
            }),
            None => cmp.only_baseline.push(key(name, algo)),
        }
    }
    for (name, algo, _) in &cur_rows {
        if !base_rows.iter().any(|(n, a, _)| n == name && a == algo) {
            cmp.only_current.push(key(name, algo));
        }
    }
    Ok(cmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, &str, f64, u64)]) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "getafix-bench-fig2/2");
        w.key("workloads");
        w.begin_array();
        for (name, algo, wall, reevals) in entries {
            w.begin_object();
            w.field_str("name", name);
            w.field_str("algorithm", algo);
            w.key("strategies");
            w.begin_object();
            w.key("worklist");
            w.begin_object();
            w.field_f64_prec("wall_ms", *wall, 3);
            w.field_u64("reevaluations", *reevals);
            w.key("stats");
            w.begin_object();
            w.field_u64("cache_hits", 75);
            w.field_u64("cache_misses", 25);
            w.field_u64("peak_arena_bytes", 1 << 20);
            w.end_object();
            w.end_object();
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    #[test]
    fn matches_by_name_and_algorithm_and_gates_on_matched_wall() {
        let base =
            report(&[("a", "ef", 100.0, 50), ("a", "ef-opt", 50.0, 20), ("gone", "ef", 10.0, 5)]);
        let cur =
            report(&[("a", "ef", 110.0, 50), ("a", "ef-opt", 80.0, 22), ("new", "ef", 99.0, 1)]);
        let cmp = compare_fig2(&base, &cur).expect("compares");
        assert_eq!(cmp.rows.len(), 2);
        assert_eq!(cmp.only_baseline, vec!["gone (ef)"]);
        assert_eq!(cmp.only_current, vec!["new (ef)"]);
        // Matched totals: 150 → 190; the unmatched 10/99 ms never count.
        let (b, c) = cmp.total_wall_ms();
        assert_eq!((b, c), (150.0, 190.0));
        assert!(cmp.gate(1.30).is_ok());
        let err = cmp.gate(1.25).expect_err("26.7% regression trips the gate");
        assert!(err.contains("1.27x"), "{err}");

        let table = cmp.render();
        assert!(table.contains("a (ef-opt)"), "{table}");
        assert!(table.contains("+60%"), "{table}");
        assert!(table.contains("only in baseline"), "{table}");

        let v = parse(&cmp.to_json()).expect("comparison JSON parses");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("getafix-bench-compare/1"));
        assert_eq!(v.get("baseline_wall_ms").and_then(Value::as_f64), Some(150.0));
        let rows = v.get("workloads").and_then(Value::as_array).expect("workloads");
        assert_eq!(rows.len(), 2);
        let hit = rows[0]
            .get("baseline")
            .and_then(|b| b.get("cache_hit_rate"))
            .and_then(Value::as_f64)
            .expect("hit rate");
        assert!((hit - 0.75).abs() < 1e-9);
    }

    #[test]
    fn tolerates_baselines_missing_new_fields() {
        // A hand-stripped baseline: no algorithm, no reevaluations, no
        // embedded stats — only wall_ms, like the earliest reports.
        let base = r#"{"workloads": [
            {"name": "a", "strategies": {"worklist": {"wall_ms": 10.0}}}
        ]}"#;
        let cur = r#"{"workloads": [
            {"name": "a", "strategies": {"worklist": {"wall_ms": 11.0,
                "reevaluations": 7,
                "stats": {"cache_hits": 1, "cache_misses": 1, "peak_arena_bytes": 2048}}}}
        ]}"#;
        let cmp = compare_fig2(base, cur).expect("old schema still compares");
        assert_eq!(cmp.rows.len(), 1);
        let r = &cmp.rows[0];
        assert_eq!(r.base.reevaluations, None);
        assert_eq!(r.base.cache_hit_rate, None);
        assert_eq!(r.cur.reevaluations, Some(7));
        assert!(cmp.gate(1.25).is_ok());
        assert!(cmp.render().contains('-'), "absent fields render as dashes");
    }

    #[test]
    fn rejects_garbage_and_disjoint_reports() {
        assert!(compare_fig2("not json", "{}").is_err());
        assert!(compare_fig2("{}", "{}").is_err(), "no workloads array");
        let a = report(&[("a", "ef", 1.0, 1)]);
        let b = report(&[("b", "ef", 1.0, 1)]);
        let cmp = compare_fig2(&a, &b).expect("parses");
        assert!(cmp.gate(1.25).is_err(), "nothing matched — the gate must not silently pass");
    }
}
