//! Shared runners for the benchmark harness: each function reproduces one
//! row family of the paper's evaluation and returns structured results the
//! binaries print as the paper's tables.

pub mod bdd_kernel;
pub mod compare;

use getafix_bebop::bebop_reachable;
use getafix_boolprog::{Cfg, Pc, Program};
use getafix_conc::{check_merged, merge, Merged};
use getafix_core::{check_reachability, check_reachability_with, Algorithm};
use getafix_mucalc::{SolveOptions, Strategy};
use getafix_pds::{poststar, prestar};
use getafix_workloads as workloads;
use std::time::Duration;

/// One Figure 2 row (possibly aggregated over a sub-suite).
#[derive(Debug, Clone, Default)]
pub struct Fig2Row {
    /// Suite / program name.
    pub name: String,
    /// Programs aggregated into this row.
    pub programs: usize,
    /// Average non-blank LOC.
    pub loc: f64,
    /// Max return values (average across programs).
    pub ret: f64,
    /// Max parameters (average).
    pub params: f64,
    /// Globals (average).
    pub globals: f64,
    /// Total locals (average).
    pub locals: f64,
    /// Max locals per procedure (average).
    pub max_locals: f64,
    /// Procedures (average).
    pub procedures: f64,
    /// Expected verdict (all programs in a row share it).
    pub reachable: bool,
    /// Average final summary BDD nodes (from EF-opt).
    pub nodes: f64,
    /// Average times per engine.
    pub ef: Duration,
    /// EF-opt time.
    pub ef_opt: Duration,
    /// Forward PDS baseline time.
    pub moped1: Duration,
    /// Backward PDS baseline time.
    pub moped2: Duration,
    /// Worklist baseline time.
    pub bebop: Duration,
}

/// A named case: program + target label + expected verdict.
#[derive(Debug, Clone)]
pub struct SeqCase {
    /// Case name.
    pub name: String,
    /// The program.
    pub program: Program,
    /// Target label.
    pub label: String,
    /// Expected verdict.
    pub expect: bool,
}

/// Runs all five engines on a set of cases and aggregates a Figure 2 row.
///
/// # Panics
///
/// Panics if any engine errs or disagrees with the expected verdict — a
/// benchmark that measures wrong answers is worthless.
pub fn run_fig2_row(name: &str, cases: &[SeqCase]) -> Fig2Row {
    let mut row = Fig2Row { name: name.to_string(), programs: cases.len(), ..Fig2Row::default() };
    assert!(!cases.is_empty());
    row.reachable = cases[0].expect;
    let n = cases.len() as f64;
    for case in cases {
        let md = case.program.metadata();
        row.loc += case.program.loc() as f64 / n;
        row.ret += md.max_returns as f64 / n;
        row.params += md.max_params as f64 / n;
        row.globals += md.globals as f64 / n;
        row.locals += md.total_locals as f64 / n;
        row.max_locals += md.max_locals as f64 / n;
        row.procedures += md.procedures as f64 / n;

        let cfg = Cfg::build(&case.program).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let pc = cfg
            .label(&case.label)
            .unwrap_or_else(|| panic!("{}: no label {}", case.name, case.label));

        let ef = check_reachability(&cfg, &[pc], Algorithm::EntryForward)
            .unwrap_or_else(|e| panic!("{} ef: {e}", case.name));
        assert_eq!(ef.reachable, case.expect, "{} (ef)", case.name);
        row.ef += Duration::from_secs_f64((ef.encode_time + ef.solve_time).as_secs_f64() / n);

        let efo = check_reachability(&cfg, &[pc], Algorithm::EntryForwardOpt)
            .unwrap_or_else(|e| panic!("{} ef-opt: {e}", case.name));
        assert_eq!(efo.reachable, case.expect, "{} (ef-opt)", case.name);
        row.ef_opt += Duration::from_secs_f64((efo.encode_time + efo.solve_time).as_secs_f64() / n);
        row.nodes += efo.summary_nodes as f64 / n;

        let m1 = poststar(&cfg, &[pc]).unwrap_or_else(|e| panic!("{} post*: {e}", case.name));
        assert_eq!(m1.reachable, case.expect, "{} (post*)", case.name);
        row.moped1 += Duration::from_secs_f64(m1.time.as_secs_f64() / n);

        let m2 = prestar(&cfg, &[pc]).unwrap_or_else(|e| panic!("{} pre*: {e}", case.name));
        assert_eq!(m2.reachable, case.expect, "{} (pre*)", case.name);
        row.moped2 += Duration::from_secs_f64(m2.time.as_secs_f64() / n);

        let bb =
            bebop_reachable(&cfg, &[pc]).unwrap_or_else(|e| panic!("{} bebop: {e}", case.name));
        assert_eq!(bb.reachable, case.expect, "{} (bebop)", case.name);
        row.bebop += Duration::from_secs_f64(bb.time.as_secs_f64() / n);
    }
    row
}

/// Prints the Figure 2 table header.
pub fn print_fig2_header() {
    println!(
        "{:<22} {:>4} {:>7} {:>4} {:>6} {:>4} {:>6} {:>5} {:>5} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "suite", "#", "LOC", "ret", "param", "gl", "loc", "maxl", "proc", "Reach?", "EF", "EFopt",
        "moped1", "moped2", "bebop"
    );
    println!("{}", "-".repeat(130));
}

/// Prints one Figure 2 row.
pub fn print_fig2_row(r: &Fig2Row) {
    println!(
        "{:<22} {:>4} {:>7.0} {:>4.1} {:>6.1} {:>4.1} {:>6.1} {:>5.1} {:>5.1} {:>6} {:>7.0}ms {:>7.0}ms {:>7.0}ms {:>7.0}ms {:>7.0}ms",
        r.name,
        r.programs,
        r.loc,
        r.ret,
        r.params,
        r.globals,
        r.locals,
        r.max_locals,
        r.procedures,
        if r.reachable { "Yes" } else { "No" },
        r.ef.as_secs_f64() * 1e3,
        r.ef_opt.as_secs_f64() * 1e3,
        r.moped1.as_secs_f64() * 1e3,
        r.moped2.as_secs_f64() * 1e3,
        r.bebop.as_secs_f64() * 1e3,
    );
}

/// The regression rows (positive and negative).
pub fn regression_cases() -> (Vec<SeqCase>, Vec<SeqCase>) {
    let (pos, neg) = workloads::regression_suite();
    let conv = |cs: Vec<workloads::Case>| -> Vec<SeqCase> {
        cs.into_iter()
            .map(|c| SeqCase {
                name: c.name,
                program: c.program,
                label: c.label,
                expect: c.expect_reachable,
            })
            .collect()
    };
    (conv(pos), conv(neg))
}

/// The SLAM driver rows at a given scale.
pub fn slam_cases(scale: usize) -> Vec<(String, Vec<SeqCase>)> {
    workloads::slam_suites(scale)
        .into_iter()
        .map(|(name, cs)| {
            let cases = cs
                .into_iter()
                .map(|c| SeqCase {
                    name: c.name,
                    program: c.program,
                    label: c.label,
                    expect: c.expect_reachable,
                })
                .collect();
            (name, cases)
        })
        .collect()
}

/// The dead-baggage rows: live kernels wrapped in prunable junk, the
/// workload the pre-solve slicer is measured on.
pub fn dead_baggage_cases() -> Vec<SeqCase> {
    workloads::dead_baggage_suite()
        .into_iter()
        .map(|c| SeqCase {
            name: c.name,
            program: c.program,
            label: c.label,
            expect: c.expect_reachable,
        })
        .collect()
}

/// The Terminator rows at a given counter width.
pub fn terminator_cases(bits: usize) -> Vec<SeqCase> {
    workloads::terminator_suite(bits)
        .into_iter()
        .map(|c| SeqCase {
            name: c.name,
            program: c.program,
            label: c.label,
            expect: c.expect_reachable,
        })
        .collect()
}

/// Work done by each solver strategy on the same cases: total relation
/// re-evaluations (body compilations), the scheduling-quality measure of
/// the worklist engine.
#[derive(Debug, Clone, Default)]
pub struct StrategyComparison {
    /// Total re-evaluations under [`Strategy::RoundRobin`].
    pub round_robin: usize,
    /// Total re-evaluations under [`Strategy::Worklist`].
    pub worklist: usize,
    /// Cases where the strategies disagreed with each other *or* with the
    /// expected verdict (must stay empty — the worklist engine is only a
    /// scheduler, and both strategies must match the construction).
    pub verdict_mismatches: Vec<String>,
}

/// Runs `algorithm` on every case under both strategies and accumulates
/// total re-evaluations; verdicts are cross-checked against each other and
/// the expectation.
///
/// # Panics
///
/// Panics if either strategy errs.
pub fn compare_strategies(cases: &[SeqCase], algorithm: Algorithm) -> StrategyComparison {
    let mut cmp = StrategyComparison::default();
    for case in cases {
        let cfg = Cfg::build(&case.program).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let pc = cfg
            .label(&case.label)
            .unwrap_or_else(|| panic!("{}: no label {}", case.name, case.label));
        let rr = check_reachability_with(
            &cfg,
            &[pc],
            algorithm,
            SolveOptions::with_strategy(Strategy::RoundRobin),
        )
        .unwrap_or_else(|e| panic!("{} rr: {e}", case.name));
        let wl = check_reachability_with(
            &cfg,
            &[pc],
            algorithm,
            SolveOptions::with_strategy(Strategy::Worklist),
        )
        .unwrap_or_else(|e| panic!("{} wl: {e}", case.name));
        cmp.round_robin += rr.reevaluations;
        cmp.worklist += wl.reevaluations;
        if rr.reachable != wl.reachable || rr.reachable != case.expect {
            cmp.verdict_mismatches.push(case.name.clone());
        }
    }
    cmp
}

/// One Figure 3 row: a configuration at one switch bound.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Switch bound.
    pub switches: usize,
    /// Verdict.
    pub reachable: bool,
    /// `Reach` tuple count.
    pub reach_tuples: f64,
    /// `Reach` BDD nodes.
    pub reach_nodes: usize,
    /// Solve time.
    pub time: Duration,
}

/// Runs one Bluetooth configuration across `1..=max_k` switches.
///
/// # Panics
///
/// Panics on engine errors.
pub fn run_fig3_config(adders: usize, stoppers: usize, max_k: usize) -> (Merged, Vec<Fig3Row>) {
    run_fig3_config_jobs(adders, stoppers, max_k, 1)
}

/// [`run_fig3_config`] with the independent per-threshold solves fanned
/// out across `jobs` workers (0 = all available parallelism). Each switch
/// bound builds its own solver and BDD manager, so the solves share
/// nothing and the verdict/tuple/node columns are identical at any job
/// count — only the `time` column and total wall change.
///
/// # Panics
///
/// Panics on engine errors.
pub fn run_fig3_config_jobs(
    adders: usize,
    stoppers: usize,
    max_k: usize,
    jobs: usize,
) -> (Merged, Vec<Fig3Row>) {
    let conc = workloads::bluetooth(adders, stoppers);
    let merged = merge(&conc).expect("merge");
    let targets: Vec<Pc> = (0..adders)
        .map(|i| merged.cfg.label(&workloads::adder_err_label(i)).expect("ERR label"))
        .collect();
    let rows = getafix_mucalc::parallel_map(jobs, (1..=max_k).collect(), |_, k| {
        let r = check_merged(&merged, &targets, k).unwrap_or_else(|e| panic!("k={k}: {e}"));
        Fig3Row {
            switches: k,
            reachable: r.reachable,
            reach_tuples: r.reach_tuples,
            reach_nodes: r.reach_nodes,
            time: r.solve_time,
        }
    });
    (merged, rows)
}
