//! Criterion benchmarks for the Figure 2 engines: one benchmark group per
//! suite family, one benchmark per engine, on fixed small instances so the
//! relative shape is measured repeatably.

use criterion::{criterion_group, criterion_main, Criterion};
use getafix_bebop::bebop_reachable;
use getafix_boolprog::{Cfg, Pc};
use getafix_core::{check_reachability, check_reachability_with, Algorithm};
use getafix_mucalc::{SolveOptions, Strategy};
use getafix_pds::{poststar, prestar};
use getafix_workloads::{
    driver, regression_suite, terminator, DeadStyle, DriverSpec, TerminatorVariant,
};
use std::hint::black_box;

fn engines(c: &mut Criterion, group: &str, cfg: &Cfg, pc: Pc) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("getafix-ef", |b| {
        b.iter(|| check_reachability(black_box(cfg), &[pc], Algorithm::EntryForward).unwrap())
    });
    g.bench_function("getafix-ef-opt", |b| {
        b.iter(|| check_reachability(black_box(cfg), &[pc], Algorithm::EntryForwardOpt).unwrap())
    });
    g.bench_function("moped1-poststar", |b| b.iter(|| poststar(black_box(cfg), &[pc]).unwrap()));
    g.bench_function("moped2-prestar", |b| b.iter(|| prestar(black_box(cfg), &[pc]).unwrap()));
    g.bench_function("bebop-worklist", |b| {
        b.iter(|| bebop_reachable(black_box(cfg), &[pc]).unwrap())
    });
    g.finish();
}

fn bench_regression(c: &mut Criterion) {
    // A representative positive and negative regression case.
    let (pos, neg) = regression_suite();
    for case in [&pos[5], &neg[5]] {
        let cfg = Cfg::build(&case.program).unwrap();
        let pc = cfg.label(&case.label).unwrap();
        engines(c, &format!("fig2-regression/{}", case.name), &cfg, pc);
    }
}

fn bench_slam(c: &mut Criterion) {
    for positive in [true, false] {
        let case = driver(
            if positive { "pos" } else { "neg" },
            DriverSpec { handlers: 3, globals: 2, locals: 3, filler: 2, positive, seed: 0xFE },
        );
        let cfg = Cfg::build(&case.program).unwrap();
        let pc = cfg.label(&case.label).unwrap();
        engines(c, &format!("fig2-driver/{}", case.name), &cfg, pc);
    }
}

fn bench_terminator(c: &mut Criterion) {
    for (variant, style) in
        [(TerminatorVariant::A, DeadStyle::Iterative), (TerminatorVariant::B, DeadStyle::Schoose)]
    {
        let case = terminator(variant, style, 3);
        let cfg = Cfg::build(&case.program).unwrap();
        let pc = cfg.label(&case.label).unwrap();
        engines(c, &format!("fig2-terminator/{}", case.name), &cfg, pc);
    }
}

/// Worklist vs round-robin scheduling, isolated from the engine
/// comparison: the same formula algorithms, both solver strategies. The
/// largest spread is on `simple`, whose `Summary`/`EntryReach` strata the
/// round-robin semantics re-derives nestedly.
fn bench_strategies(c: &mut Criterion) {
    let (pos, _) = regression_suite();
    // Same representative case as bench_regression; its name is part of the
    // group label so a suite reordering shows up as a renamed benchmark
    // rather than silently incomparable numbers.
    let case = &pos[5];
    let cfg = Cfg::build(&case.program).unwrap();
    let pc = cfg.label(&case.label).unwrap();
    for algo in [Algorithm::SummarySimple, Algorithm::EntryForward] {
        let mut g = c.benchmark_group(format!("fig2-strategy/{}/{algo}", case.name));
        g.sample_size(10);
        for strategy in [Strategy::Worklist, Strategy::RoundRobin] {
            g.bench_function(strategy.to_string(), |b| {
                b.iter(|| {
                    check_reachability_with(
                        black_box(&cfg),
                        &[pc],
                        algo,
                        SolveOptions::with_strategy(strategy),
                    )
                    .unwrap()
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_regression, bench_slam, bench_terminator, bench_strategies);
criterion_main!(benches);
