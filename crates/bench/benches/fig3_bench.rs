//! Criterion benchmarks for Figure 3: the bounded context-switching engine
//! on the Bluetooth model, per configuration and switch bound.

use criterion::{criterion_group, criterion_main, Criterion};
use getafix_conc::{check_merged, merge};
use getafix_workloads::{adder_err_label, bluetooth};
use std::hint::black_box;

fn bench_bluetooth(c: &mut Criterion) {
    for (adders, stoppers) in [(1usize, 1usize), (1, 2), (2, 1)] {
        let conc = bluetooth(adders, stoppers);
        let merged = merge(&conc).unwrap();
        let targets: Vec<_> =
            (0..adders).map(|i| merged.cfg.label(&adder_err_label(i)).unwrap()).collect();
        let mut g = c.benchmark_group(format!("fig3-bluetooth/{adders}a{stoppers}s"));
        g.sample_size(10);
        for k in [1usize, 2, 3] {
            g.bench_function(format!("k{k}"), |b| {
                b.iter(|| check_merged(black_box(&merged), &targets, k).unwrap())
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_bluetooth);
criterion_main!(benches);
