//! The dead-baggage suite: live reachability kernels wrapped in the junk
//! real predicate abstractions accumulate — a loop-carried chain of faint
//! locals (never read by any guard, but shifted every iteration, so the
//! solver drags their full product through the fixpoint), a write-only
//! global, a statically-false branch into a dead recursive pair, and an
//! entirely uncalled procedure.
//!
//! The suite exists to measure the pre-solve slicer: every case's verdict
//! is decided by the small kernel alone, so slicing must preserve it while
//! strictly shrinking both the encoded BDD variable count (the faint chain
//! and the dead procedures' pcs disappear from the state layout) and the
//! worklist re-evaluation count (the faint product no longer delays
//! summary convergence).

use crate::Case;
use getafix_boolprog::parse_program;
use std::fmt::Write;

/// One dead-baggage program: a `chain`-long faint shift register in a
/// nondeterministic loop around a one-flag kernel. `positive` picks the
/// guard: `g` (reachable — the kernel can set it) or `g & !g`
/// (unreachable, but *not* provably so for a non-relational constant
/// propagation, so the sliced program still solves to its full fixpoint).
fn dead_baggage_src(chain: usize, positive: bool) -> String {
    assert!(chain >= 2, "the shift register needs at least two stages");
    let mut s = String::new();
    let _ = writeln!(s, "decl g, scratch;");
    let _ = writeln!(s, "main() begin");
    for i in 0..chain {
        let _ = writeln!(s, "  decl s{i};");
    }
    let _ = writeln!(s, "  s0 := *;");
    let _ = writeln!(s, "  while (*) do");
    for i in (1..chain).rev() {
        let _ = writeln!(s, "    s{i} := s{};", i - 1);
    }
    let _ = writeln!(s, "    s0 := *;");
    let _ = writeln!(s, "    scratch := s{};", chain - 1);
    let _ = writeln!(s, "  od;");
    let _ = writeln!(s, "  call kernel();");
    let _ = writeln!(s, "  if (!T) then");
    let _ = writeln!(s, "    call legacy0();");
    let _ = writeln!(s, "  fi;");
    let guard = if positive { "g" } else { "g & !g" };
    let _ = writeln!(s, "  if ({guard}) then HIT: skip; fi;");
    let _ = writeln!(s, "end");
    let _ = writeln!(s, "kernel() begin");
    let _ = writeln!(s, "  if (*) then g := !g; fi;");
    let _ = writeln!(s, "end");
    let _ = writeln!(s, "legacy0() begin");
    let _ = writeln!(s, "  decl t;");
    let _ = writeln!(s, "  t := *;");
    let _ = writeln!(s, "  call legacy1();");
    let _ = writeln!(s, "end");
    let _ = writeln!(s, "legacy1() begin");
    let _ = writeln!(s, "  call legacy0();");
    let _ = writeln!(s, "end");
    let _ = writeln!(s, "orphan() begin");
    let _ = writeln!(s, "  call kernel();");
    let _ = writeln!(s, "end");
    s
}

/// The dead-baggage cases: shift registers of 2, 4 and 6 stages, each in
/// a reachable and an unreachable variant.
pub fn dead_baggage_suite() -> Vec<Case> {
    let mut out = Vec::new();
    for chain in [2usize, 4, 6] {
        for positive in [true, false] {
            let name = format!("dead-baggage-{chain}{}", if positive { "p" } else { "n" });
            let src = dead_baggage_src(chain, positive);
            let program = parse_program(&src)
                .unwrap_or_else(|e| panic!("dead-baggage template {name}: {e}\n{src}"));
            out.push(Case { name, program, label: "HIT".into(), expect_reachable: positive });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use getafix_boolprog::{
        analysis::{slice, AnalysisOptions},
        explicit_reachable, Cfg,
    };

    #[test]
    fn verdicts_match_the_oracle() {
        for case in dead_baggage_suite() {
            let cfg = Cfg::build(&case.program).unwrap_or_else(|e| panic!("{}: {e}", case.name));
            let pc = cfg.label(&case.label).expect("HIT label");
            let r = explicit_reachable(&cfg, &[pc], 50_000_000).expect("oracle in budget");
            assert_eq!(r.reachable, case.expect_reachable, "{}", case.name);
        }
    }

    #[test]
    fn every_case_slices_strictly_smaller() {
        // The suite's reason to exist: the baggage must be deletable (and
        // deleted) without touching the verdict-deciding kernel.
        for case in dead_baggage_suite() {
            let cfg = Cfg::build(&case.program).unwrap_or_else(|e| panic!("{}: {e}", case.name));
            let pc = cfg.label(&case.label).expect("HIT label");
            let s = slice(&cfg, &AnalysisOptions::sequential().with_targets(&[pc]));
            assert!(s.map_pc(pc).is_some(), "{}: target must survive the slice", case.name);
            assert!(
                s.stats.state_bits_after < s.stats.state_bits_before,
                "{}: expected a state-bit reduction, got {:?}",
                case.name,
                s.stats
            );
            assert!(s.stats.relations_pruned() > 0, "{}: nothing pruned", case.name);
            // The faint chain and the write-only global are gone entirely.
            assert_eq!(s.stats.max_locals_after, 0, "{}", case.name);
            assert_eq!(s.stats.globals_after, 1, "{}", case.name);
            // Both dead procedures (legacy pair + orphan) dropped.
            assert_eq!(s.stats.procs_after, s.stats.procs_before - 3, "{}", case.name);
        }
    }
}
