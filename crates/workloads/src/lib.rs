//! Benchmark workload generators for the Getafix reproduction — the
//! stand-ins for the proprietary suites of the paper's evaluation:
//!
//! * [`regression_suite`] — 99 positive + 79 negative feature programs
//!   (Figure 2, Regression rows);
//! * [`slam_suites`] — four device-driver sub-suites with the
//!   `iscsiprt`/`floppy`/negative/`iscsi` shapes (Figure 2, SLAM rows);
//! * [`terminator_suite`] — state-rich counter programs in the two `dead`
//!   modelings (Figure 2, Terminator rows);
//! * [`dead_baggage_suite`] — live kernels wrapped in prunable junk
//!   (faint shift registers, dead procedures, write-only globals) for
//!   measuring the pre-solve slicer;
//! * [`bluetooth`] — the Qadeer–Wu Bluetooth driver model with adder and
//!   stopper threads (Figure 3), tuned so the bug thresholds match the
//!   paper's table exactly.
//!
//! All generators are deterministic (seeded); expected verdicts hold by
//! construction and are re-checked against the explicit oracle in tests.

mod bluetooth;
mod dead_baggage;
mod regression;
mod slam;
mod terminator;

pub use bluetooth::{adder_err_label, bluetooth, FIG3_WITNESS_CASES, FIGURE3_CONFIGS};
pub use dead_baggage::dead_baggage_suite;
pub use regression::{regression_suite, Case};
pub use slam::{driver, slam_suites, DriverCase, DriverSpec};
pub use terminator::{terminator, terminator_suite, DeadStyle, TerminatorCase, TerminatorVariant};
