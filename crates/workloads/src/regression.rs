//! The Regression suite: small programs exercising individual language
//! features, half with a reachable target ("positive") and half with an
//! unreachable one ("negative") — the stand-in for the 99 + 79 SLAM
//! regression programs of Figure 2.
//!
//! Programs are generated from feature templates crossed with small
//! parameter variations; every program carries a `HIT` label whose
//! reachability is guaranteed *by construction* (and double-checked against
//! the explicit oracle in this crate's tests).

use getafix_boolprog::{parse_program, Program};

/// One benchmark case.
#[derive(Debug, Clone)]
pub struct Case {
    /// Suite-unique name.
    pub name: String,
    /// The program.
    pub program: Program,
    /// The reachability target label (always `"HIT"` in this suite).
    pub label: String,
    /// The expected verdict.
    pub expect_reachable: bool,
}

fn case(name: String, src: &str, expect: bool) -> Case {
    let program =
        parse_program(src).unwrap_or_else(|e| panic!("regression template {name}: {e}\n{src}"));
    Case { name, program, label: "HIT".into(), expect_reachable: expect }
}

/// Chain of `n` pass-through calls ending in a (non-)hit.
fn call_chain(n: usize, positive: bool) -> String {
    let mut procs = String::new();
    for i in 0..n {
        let next = if i + 1 < n {
            format!("r := p{}(a);", i + 1)
        } else if positive {
            "r := a;".to_string()
        } else {
            "r := a & !a;".to_string()
        };
        procs
            .push_str(&format!("p{i}(a) returns 1 begin\n  decl r;\n  {next}\n  return r;\nend\n"));
    }
    format!(
        "decl g;\nmain() begin\n  decl x;\n  x := p0(T);\n  if (x) then HIT: skip; fi;\nend\n{procs}"
    )
}

/// Nested ifs `d` deep; the innermost branch is the target.
fn nested_if(d: usize, positive: bool) -> String {
    let guard = if positive { "x" } else { "x & !x" };
    let mut body = "HIT: skip;\n".to_string();
    for _ in 0..d {
        body = format!("if ({guard}) then\n{body}fi;\n");
    }
    format!("main() begin\n  decl x;\n  x := T;\n{body}end\n")
}

/// While loop flipping a flag; parity decides reachability.
fn loop_parity(iters: usize, positive: bool) -> String {
    // After an even number of flips the flag is back to F.
    let flips = if positive { iters * 2 + 1 } else { iters * 2 };
    let mut flips_src = String::new();
    for _ in 0..flips {
        flips_src.push_str("  g := !g;\n");
    }
    format!("decl g;\nmain() begin\n  g := F;\n{flips_src}  if (g) then HIT: skip; fi;\nend\n")
}

/// Multi-value returns with swapping.
fn multi_return(width: usize, positive: bool) -> String {
    let params: Vec<String> = (0..width).map(|i| format!("a{i}")).collect();
    let rets: Vec<String> = (0..width).rev().map(|i| format!("a{i}")).collect();
    let targets: Vec<String> = (0..width).map(|i| format!("x{i}")).collect();
    let args: Vec<String> =
        (0..width).map(|i| if i == 0 { "T".into() } else { "F".into() }).collect();
    // After the swap, the T ends up in the last slot.
    let guard = if positive {
        format!("x{}", width - 1)
    } else {
        format!("x{} & !x{}", width - 1, width - 1)
    };
    format!(
        "main() begin\n  decl {};\n  {} := sw({});\n  if ({guard}) then HIT: skip; fi;\nend\n\
         sw({}) returns {} begin\n  return {};\nend\n",
        targets.join(", "),
        targets.join(", "),
        args.join(", "),
        params.join(", "),
        width,
        rets.join(", ")
    )
}

/// Recursion transporting a global.
fn recursion(depth_flag: bool, positive: bool) -> String {
    let set = if positive { "g := T;" } else { "g := g & !g;" };
    let guard = if depth_flag { "d" } else { "*" };
    format!(
        "decl g;\nmain() begin\n  call r(F);\n  if (g) then HIT: skip; fi;\nend\n\
         r(d) begin\n  if ({guard}) then\n    {set}\n  else\n    call r(T);\n  fi;\nend\n"
    )
}

/// schoose-constrained choice.
fn schoose_case(free: bool, positive: bool) -> String {
    let expr = match (free, positive) {
        (true, true) => "schoose [F, F]",   // free: can be T
        (true, false) => "schoose [F, T]",  // forced F
        (false, true) => "schoose [T, F]",  // forced T
        (false, false) => "schoose [g, T]", // g is F initially: forced F
    };
    format!("decl g;\nmain() begin\n  decl x;\n  x := {expr};\n  if (x) then HIT: skip; fi;\nend\n")
}

/// Goto over poisoning code.
fn goto_case(skip_poison: bool) -> String {
    if skip_poison {
        "decl g;\nmain() begin\n  g := T;\n  goto L;\n  g := F;\n  L: skip;\n  if (g) then HIT: skip; fi;\nend\n".into()
    } else {
        "decl g;\nmain() begin\n  g := T;\n  g := F;\n  L: skip;\n  if (g) then HIT: skip; fi;\nend\n".into()
    }
}

/// assume pruning.
fn assume_case(consistent: bool) -> String {
    let a = if consistent { "x" } else { "!x" };
    format!(
        "main() begin\n  decl x;\n  x := *;\n  assume ({a});\n  if (x) then HIT: skip; fi;\nend\n"
    )
}

/// Parallel assignment (swap chains).
fn parallel_assign(rounds: usize, positive: bool) -> String {
    let mut swaps = String::new();
    for _ in 0..rounds {
        swaps.push_str("  a, b := b, a;\n");
    }
    // After `rounds` swaps, T is in a iff rounds is even.
    let guard = if rounds.is_multiple_of(2) == positive { "a" } else { "b" };
    let negguard = if positive { guard.to_string() } else { format!("{guard} & !{guard}") };
    format!(
        "decl a, b;\nmain() begin\n  a := T;\n  b := F;\n{swaps}  if ({negguard}) then HIT: skip; fi;\nend\n"
    )
}

/// Globals carried across a call boundary.
fn global_via_call(positive: bool) -> String {
    let v = if positive { "T" } else { "F" };
    format!(
        "decl g;\nmain() begin\n  call s();\n  if (g) then HIT: skip; fi;\nend\n\
         s() begin\n  g := {v};\nend\n"
    )
}

/// The full regression suite: `(positive cases, negative cases)`.
///
/// Sizes match Figure 2's row counts: 99 positive and 79 negative programs.
pub fn regression_suite() -> (Vec<Case>, Vec<Case>) {
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    let mut add = |name: String, src: String, expect: bool| {
        let c = case(name, &src, expect);
        if expect {
            pos.push(c);
        } else {
            neg.push(c);
        }
    };

    for n in 1..=12 {
        add(format!("pos-chain-{n}"), call_chain(n, true), true);
    }
    for n in 1..=10 {
        add(format!("neg-chain-{n}"), call_chain(n, false), false);
    }
    for d in 1..=12 {
        add(format!("pos-nest-{d}"), nested_if(d, true), true);
    }
    for d in 1..=10 {
        add(format!("neg-nest-{d}"), nested_if(d, false), false);
    }
    for i in 0..12 {
        add(format!("pos-loop-{i}"), loop_parity(i, true), true);
    }
    for i in 1..=10 {
        add(format!("neg-loop-{i}"), loop_parity(i, false), false);
    }
    for w in 1..=12 {
        add(format!("pos-multiret-{w}"), multi_return(w, true), true);
    }
    for w in 1..=10 {
        add(format!("neg-multiret-{w}"), multi_return(w, false), false);
    }
    for (i, df) in [true, false].into_iter().enumerate() {
        add(format!("pos-rec-{i}"), recursion(df, true), true);
        add(format!("neg-rec-{i}"), recursion(df, false), false);
    }
    for (i, fr) in [true, false].into_iter().enumerate() {
        add(format!("pos-schoose-{i}"), schoose_case(fr, true), true);
        add(format!("neg-schoose-{i}"), schoose_case(fr, false), false);
    }
    add("pos-goto".into(), goto_case(true), true);
    add("neg-goto".into(), goto_case(false), false);
    add("pos-assume".into(), assume_case(true), true);
    add("neg-assume".into(), assume_case(false), false);
    for r in 1..=12 {
        add(format!("pos-par-{r}"), parallel_assign(r, true), true);
    }
    for r in 1..=10 {
        add(format!("neg-par-{r}"), parallel_assign(r, false), false);
    }
    add("pos-gcall".into(), global_via_call(true), true);
    add("neg-gcall".into(), global_via_call(false), false);

    // Pad deterministically with slightly larger variants to hit the
    // Figure 2 counts exactly (99 positive, 79 negative).
    let mut extra = 0usize;
    while pos.len() < 99 {
        extra += 1;
        let n = 12 + extra;
        let c = case(format!("pos-chain-{n}"), &call_chain(n, true), true);
        pos.push(c);
    }
    let mut extra = 0usize;
    while neg.len() < 79 {
        extra += 1;
        let n = 10 + extra;
        let c = case(format!("neg-chain-{n}"), &call_chain(n, false), false);
        neg.push(c);
    }
    pos.truncate(99);
    neg.truncate(79);
    (pos, neg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use getafix_boolprog::{explicit_reachable_label, Cfg};

    #[test]
    fn suite_sizes_match_figure2() {
        let (pos, neg) = regression_suite();
        assert_eq!(pos.len(), 99);
        assert_eq!(neg.len(), 79);
    }

    #[test]
    fn expected_verdicts_match_oracle() {
        let (pos, neg) = regression_suite();
        for c in pos.iter().chain(&neg) {
            let cfg = Cfg::build(&c.program).unwrap_or_else(|e| panic!("{}: {e}", c.name));
            let r = explicit_reachable_label(&cfg, &c.label, 5_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", c.name))
                .unwrap_or_else(|| panic!("{}: no HIT label", c.name));
            assert_eq!(r.reachable, c.expect_reachable, "case {}", c.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let (pos, neg) = regression_suite();
        let mut names: Vec<&str> = pos.iter().chain(&neg).map(|c| c.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
