//! The Windows NT Bluetooth driver model (Qadeer–Wu, KISS) — the Figure 3
//! concurrent benchmark.
//!
//! Two thread templates share the driver state:
//!
//! * an **adder** performs I/O: atomically check-the-stopping-flag and
//!   increment the pending-I/O count; assert the driver is not stopped;
//!   decrement; signal the stopping event when the driver has drained.
//!   The driver bug reproduced here: an adder that *fails* the flag check
//!   still decrements the count (the error path releases a reference it
//!   never took).
//! * a **stopper** halts the driver: set the stopping flag, release the
//!   driver's own reference, signal the event once drained, and mark the
//!   driver stopped. The second driver bug: a stopper that finds the
//!   reference already released decrements the adder count instead (a
//!   double release).
//!
//! These two defects give exactly the Figure 3 bug thresholds:
//!
//! | configuration          | bug manifests at |
//! |------------------------|------------------|
//! | 1 adder + 1 stopper    | never            |
//! | 1 adder + 2 stoppers   | ≥ 3 switches     |
//! | 2 adders + 1 stopper   | ≥ 4 switches     |
//! | 2 adders + 2 stoppers  | ≥ 3 switches     |
//!
//! The pending count is a 2-bit saturating counter in shared variables
//! (`p0`, `p1`); the error label is `ERR` inside the adder (reachable ⇔ an
//! adder performs I/O on a stopped driver).

use getafix_boolprog::{parse_concurrent, ConcProgram};

/// The adder thread template.
const ADDER: &str = r#"
thread
  main() begin
    decl go;
    /* Atomic check-and-increment: go records whether the flag was clear;
       the 2-bit count (p1 p0) is incremented only in that case. */
    go, p0, p1 := !flag, p0 != !flag, p1 != (p0 & !flag);
    if (go) then
      /* I/O in flight: the driver must not be stopped. */
      if (stopped) then ERR: skip; fi;
      /* Release our reference (saturating decrement). */
      if (p0 | p1) then p0, p1 := !p0, p1 != !p0; fi;
      if (flag & released & !p0 & !p1) then ev := T; fi;
    else
      /* BUG: the failure path releases a reference it never acquired. */
      if (p0 | p1) then p0, p1 := !p0, p1 != !p0; fi;
      if (flag & released & !p0 & !p1) then ev := T; fi;
    fi;
  end
endthread
"#;

/// The stopper thread template.
const STOPPER: &str = r#"
thread
  main() begin
    flag := T;
    if (!released) then
      released := T;
    else
      /* BUG: double release decrements the adders' count. */
      if (p0 | p1) then p0, p1 := !p0, p1 != !p0; fi;
    fi;
    if (released & !p0 & !p1) then ev := T; fi;
    if (ev) then stopped := T; fi;
  end
endthread
"#;

/// Builds the Bluetooth model with the given numbers of adder and stopper
/// threads. Thread 0..adders-1 are adders; the rest are stoppers.
///
/// # Panics
///
/// Panics if both counts are zero (no threads).
pub fn bluetooth(adders: usize, stoppers: usize) -> ConcProgram {
    assert!(adders + stoppers > 0, "at least one thread required");
    let mut src = String::from("shared flag, released, stopped, ev, p0, p1;\n");
    for _ in 0..adders {
        src.push_str(ADDER);
    }
    for _ in 0..stoppers {
        src.push_str(STOPPER);
    }
    parse_concurrent(&src).expect("bluetooth template parses")
}

/// The error label of adder thread `i` (threads are numbered with adders
/// first).
pub fn adder_err_label(i: usize) -> String {
    format!("t{i}__ERR")
}

/// The four Figure 3 configurations: `(name, adders, stoppers)`.
pub const FIGURE3_CONFIGS: [(&str, usize, usize); 4] = [
    ("one adder and one stopper", 1, 1),
    ("one adder and two stoppers", 1, 2),
    ("two adders and one stopper", 2, 1),
    ("two adders and two stoppers", 2, 2),
];

/// The Figure 3 witness-pipeline cases — `(adders, stoppers, switches,
/// reachable)` straddling the documented bug thresholds — shared by the
/// `bench-report` fig3 group and the witness differential suite so the
/// two always assert the same corpus.
pub const FIG3_WITNESS_CASES: [(usize, usize, usize, bool); 4] =
    [(1, 1, 3, false), (1, 2, 2, false), (1, 2, 3, true), (2, 2, 3, true)];

#[cfg(test)]
mod tests {
    use super::*;
    use getafix_conc::{conc_explicit_reachable, merge, ConcLimits};

    /// The first context switch at which the bug manifests, up to `max_k`,
    /// per the explicit oracle.
    fn threshold(adders: usize, stoppers: usize, max_k: usize) -> Option<usize> {
        let conc = bluetooth(adders, stoppers);
        let merged = merge(&conc).unwrap();
        let targets: Vec<_> =
            (0..adders).map(|i| merged.cfg.label(&adder_err_label(i)).expect("ERR")).collect();
        (1..=max_k).find(|&k| {
            conc_explicit_reachable(&merged, &targets, k, ConcLimits::default()).unwrap()
        })
    }

    #[test]
    fn one_adder_one_stopper_is_safe() {
        assert_eq!(threshold(1, 1, 6), None, "the 2-thread configuration has no bug");
    }

    #[test]
    fn two_stoppers_bug_at_three() {
        assert_eq!(threshold(1, 2, 6), Some(3));
    }

    #[test]
    fn one_stopper_two_adders_bug_at_four() {
        assert_eq!(threshold(2, 1, 6), Some(4));
    }

    #[test]
    fn two_and_two_bug_at_three() {
        assert_eq!(threshold(2, 2, 6), Some(3));
    }

    /// The §5 symbolic engine must reproduce the same thresholds as the
    /// explicit oracle on every configuration (the Figure 3 table).
    #[test]
    fn symbolic_engine_matches_thresholds() {
        use getafix_conc::check_merged;
        for (adders, stoppers, expect) in
            [(1usize, 1usize, None), (1, 2, Some(3)), (2, 1, Some(4)), (2, 2, Some(3))]
        {
            let conc = bluetooth(adders, stoppers);
            let merged = merge(&conc).unwrap();
            let targets: Vec<_> =
                (0..adders).map(|i| merged.cfg.label(&adder_err_label(i)).expect("ERR")).collect();
            let max_k = 4;
            let got = (1..=max_k).find(|&k| check_merged(&merged, &targets, k).unwrap().reachable);
            assert_eq!(got, expect, "{adders} adders + {stoppers} stoppers");
        }
    }
}
