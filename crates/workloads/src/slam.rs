//! SLAM-style device-driver workloads: long, procedure-heavy, shallow-state
//! programs — the shape of the `iscsiprt` / `floppy` / `iscsi` suites in
//! Figure 2.
//!
//! The originals are proprietary Microsoft predicate abstractions; these
//! generators reproduce the *shape* that drives the measurements: many
//! procedures, long dispatch chains, a lock/irql protocol threaded through
//! every handler, and a small reachable state space (parse/encode
//! dominated, small summary BDDs). Positive programs plant one genuine
//! protocol violation (a double acquire); negative programs follow the
//! protocol everywhere, so the violation guard is unreachable only through
//! real interprocedural reasoning.

use getafix_boolprog::{parse_program, Program};

/// Shape parameters of a generated driver.
#[derive(Debug, Clone, Copy)]
pub struct DriverSpec {
    /// Number of handler procedures (on top of the protocol procedures).
    pub handlers: usize,
    /// Extra status globals threaded around.
    pub globals: usize,
    /// Local variables per handler.
    pub locals: usize,
    /// Statements of filler local computation per handler.
    pub filler: usize,
    /// Whether the bug (double acquire) is planted.
    pub positive: bool,
    /// Generator seed.
    pub seed: u64,
}

/// One generated driver case.
#[derive(Debug, Clone)]
pub struct DriverCase {
    /// Case name.
    pub name: String,
    /// The program.
    pub program: Program,
    /// Target label.
    pub label: String,
    /// Expected verdict.
    pub expect_reachable: bool,
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generates a driver with the given shape.
pub fn driver(name: &str, spec: DriverSpec) -> DriverCase {
    let mut rng = Rng(spec.seed | 1);
    let mut src = String::new();

    // Globals: the protocol state plus padding status flags.
    let mut globals = vec!["lock".to_string(), "irql".to_string(), "pending".to_string()];
    for i in 0..spec.globals {
        globals.push(format!("st{i}"));
    }
    src.push_str(&format!("decl {};\n\n", globals.join(", ")));

    // Protocol procedures. The violation guard lives in acquire().
    src.push_str(
        "acquire() begin\n  if (lock) then ERR: skip; fi;\n  lock := T;\nend\n\n\
         release() begin\n  lock := F;\nend\n\n\
         raise_irql() returns 1 begin\n  decl old;\n  old := irql;\n  irql := T;\n  return old;\nend\n\n\
         lower_irql(old) begin\n  irql := old;\nend\n\n",
    );

    // Handlers: local computation, protocol usage, chained dispatch.
    let buggy = if spec.positive { rng.below(spec.handlers as u64) as usize } else { usize::MAX };
    for h in 0..spec.handlers {
        let locals: Vec<String> = (0..spec.locals).map(|i| format!("v{i}")).collect();
        src.push_str(&format!("handler{h}(arg) begin\n  decl {};\n", locals.join(", ")));
        src.push_str("  decl old;\n");
        // Filler computation over locals and status globals.
        for _ in 0..spec.filler {
            let t = rng.below(spec.locals as u64) as usize;
            let a = rng.below(spec.locals as u64) as usize;
            let g = rng.below(spec.globals.max(1) as u64) as usize;
            let gname = if spec.globals > 0 { format!("st{g}") } else { "pending".into() };
            match rng.below(4) {
                0 => src.push_str(&format!("  v{t} := v{a} & {gname};\n")),
                1 => src.push_str(&format!("  v{t} := v{a} | !arg;\n")),
                2 => src
                    .push_str(&format!("  if (v{a}) then v{t} := {gname}; else v{t} := *; fi;\n")),
                _ => src.push_str(&format!("  {gname} := {gname} != v{a};\n")),
            }
        }
        // Protocol section.
        src.push_str("  old := raise_irql();\n  call acquire();\n  pending := pending | arg;\n");
        if h == buggy {
            // The planted bug: re-acquire while holding the lock, guarded
            // behind a feasible local condition.
            src.push_str("  if (v0 | *) then\n    call acquire();\n  fi;\n");
        }
        src.push_str("  call release();\n  call lower_irql(old);\n");
        // Chain to the next handler sometimes.
        if h + 1 < spec.handlers && rng.below(2) == 0 {
            src.push_str(&format!("  if (*) then call handler{}(v0);\n  fi;\n", h + 1));
        }
        src.push_str("end\n\n");
    }

    // Dispatch loop.
    src.push_str("main() begin\n  decl req;\n  while (*) do\n    req := *;\n");
    for h in 0..spec.handlers {
        src.push_str(&format!("    if (*) then call handler{h}(req); fi;\n"));
    }
    src.push_str("  od;\nend\n");

    let program =
        parse_program(&src).unwrap_or_else(|e| panic!("driver generator {name}: {e}\n{src}"));
    DriverCase {
        name: name.to_string(),
        program,
        label: "ERR".into(),
        expect_reachable: spec.positive,
    }
}

/// The four Figure 2 driver sub-suites, scaled by `scale` (1 = small/test,
/// larger values approach the paper's program sizes).
pub fn slam_suites(scale: usize) -> Vec<(String, Vec<DriverCase>)> {
    let s = scale.max(1);
    let mk = |name: &str,
              count: usize,
              handlers: usize,
              globals: usize,
              locals: usize,
              positive: bool|
     -> (String, Vec<DriverCase>) {
        let cases = (0..count)
            .map(|i| {
                driver(
                    &format!("{name}-{i}"),
                    DriverSpec {
                        handlers: handlers * s,
                        globals,
                        locals,
                        filler: 4 * s,
                        positive,
                        seed: 0xBEEF ^ ((i as u64 + 1) * 0x9E3779B9),
                    },
                )
            })
            .collect();
        (name.to_string(), cases)
    };
    vec![
        // (name, #programs, handlers, globals, locals/handler, positive)
        mk("iscsiprt", 15, 6, 3, 8, true),
        mk("floppy", 12, 8, 5, 10, true),
        mk("driver-neg", 4, 6, 8, 8, false),
        mk("iscsi", 16, 7, 12, 12, true),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use getafix_boolprog::{explicit_reachable_label, Cfg};

    #[test]
    fn small_drivers_match_expected_verdicts() {
        for positive in [true, false] {
            let c = driver(
                "test",
                DriverSpec { handlers: 3, globals: 2, locals: 3, filler: 2, positive, seed: 42 },
            );
            let cfg = Cfg::build(&c.program).unwrap();
            let r =
                explicit_reachable_label(&cfg, &c.label, 5_000_000).unwrap().expect("ERR label");
            assert_eq!(r.reachable, c.expect_reachable, "positive={positive}");
        }
    }

    #[test]
    fn suites_have_figure2_counts() {
        let suites = slam_suites(1);
        let counts: Vec<usize> = suites.iter().map(|(_, cs)| cs.len()).collect();
        assert_eq!(counts, vec![15, 12, 4, 16]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = driver(
            "d",
            DriverSpec { handlers: 4, globals: 3, locals: 4, filler: 3, positive: true, seed: 7 },
        );
        let b = driver(
            "d",
            DriverSpec { handlers: 4, globals: 3, locals: 4, filler: 3, positive: true, seed: 7 },
        );
        assert_eq!(a.program, b.program);
    }

    #[test]
    fn loc_grows_with_scale() {
        let small = slam_suites(1)[0].1[0].program.loc();
        let big = slam_suites(3)[0].1[0].program.loc();
        assert!(big > 2 * small, "scale 3: {big} vs scale 1: {small}");
    }
}
