//! Terminator-style workloads: short programs with *many* live Boolean
//! variables and loops — the state-rich shape of the Terminator rows in
//! Figure 2, where reachable-set BDDs get large and GETAFIX shines.
//!
//! The original benchmarks contain `dead` statements (variables abandoned
//! by the termination argument); the paper models them two ways —
//! "iterative" nondeterministic if-then-else reassignment, and a `schoose`
//! assignment. Both emissions are reproduced here via [`DeadStyle`].

use getafix_boolprog::{parse_program, Program};

/// How `dead x` is modeled (the two Figure 2 row variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadStyle {
    /// `if (*) then x := T; else x := F; fi` per variable.
    Iterative,
    /// `x := schoose [F, F]` per variable (unconstrained choice).
    Schoose,
}

/// The three Terminator program families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminatorVariant {
    /// A bit-counter that eventually overflows: target reachable.
    A,
    /// Two counters in lock-step: divergence target unreachable, with a
    /// large reachable relation (the hard case).
    B,
    /// A parity invariant over many globals: target unreachable.
    C,
}

/// A generated Terminator case.
#[derive(Debug, Clone)]
pub struct TerminatorCase {
    /// Case name.
    pub name: String,
    /// The program.
    pub program: Program,
    /// Target label.
    pub label: String,
    /// Expected verdict.
    pub expect_reachable: bool,
}

fn dead_stmt(vars: &[String], style: DeadStyle) -> String {
    let mut out = String::new();
    for v in vars {
        match style {
            DeadStyle::Iterative => {
                out.push_str(&format!("  if (*) then {v} := T; else {v} := F; fi;\n"));
            }
            DeadStyle::Schoose => {
                out.push_str(&format!("  {v} := schoose [F, F];\n"));
            }
        }
    }
    out
}

/// Generates a Terminator-style case; `bits` controls the counter width
/// (state-space size doubles per bit).
pub fn terminator(variant: TerminatorVariant, style: DeadStyle, bits: usize) -> TerminatorCase {
    let b = bits.max(2);
    let style_name = match style {
        DeadStyle::Iterative => "iterative",
        DeadStyle::Schoose => "schoose",
    };
    let (src, expect) = match variant {
        TerminatorVariant::A => (gen_a(b, style), true),
        TerminatorVariant::B => (gen_b(b, style), false),
        TerminatorVariant::C => (gen_c(b, style), false),
    };
    let name = format!("terminator-{variant:?}-{style_name}-{b}");
    let program =
        parse_program(&src).unwrap_or_else(|e| panic!("terminator generator {name}: {e}\n{src}"));
    TerminatorCase { name, program, label: "HIT".into(), expect_reachable: expect }
}

/// Increment of an LSB-first bit vector named `p{i}`, as one parallel
/// assignment (bit i flips iff all lower bits are set).
fn increment(prefix: &str, b: usize) -> String {
    let mut targets = Vec::new();
    let mut exprs = Vec::new();
    for i in 0..b {
        targets.push(format!("{prefix}{i}"));
        let carry: Vec<String> = (0..i).map(|j| format!("{prefix}{j}")).collect();
        if carry.is_empty() {
            exprs.push(format!("!{prefix}{i}"));
        } else {
            exprs.push(format!("{prefix}{i} != ({})", carry.join(" & ")));
        }
    }
    format!("  {} := {};\n", targets.join(", "), exprs.join(", "))
}

fn all_set(prefix: &str, b: usize) -> String {
    (0..b).map(|i| format!("{prefix}{i}")).collect::<Vec<_>>().join(" & ")
}

/// Variant A: counter runs to all-ones; the target checks the overflow.
fn gen_a(b: usize, style: DeadStyle) -> String {
    let decls: Vec<String> = (0..b).map(|i| format!("x{i}")).collect();
    let olds: Vec<String> = (0..b).map(|i| format!("o{i}")).collect();
    let snapshot: String = (0..b).map(|i| format!("  o{i} := x{i};\n")).collect();
    format!(
        "decl done;\nmain() begin\n  decl {xs}, {os};\n\
         {reset}\
         \n  while (!({full})) do\n{snapshot}{inc}    call note();\n  od;\n\
         {dead}\
         \n  if ({full}) then HIT: skip; fi;\nend\n\n\
         note() begin\n  done := done | *;\nend\n",
        xs = decls.join(", "),
        os = olds.join(", "),
        reset = (0..b).map(|i| format!("  x{i} := F;\n")).collect::<String>(),
        full = all_set("x", b),
        snapshot = snapshot,
        inc = increment("x", b),
        dead = dead_stmt(&olds, style),
    )
}

/// Variant B: two counters stepped identically; divergence unreachable.
fn gen_b(b: usize, style: DeadStyle) -> String {
    let xs: Vec<String> = (0..b).map(|i| format!("x{i}")).collect();
    let ys: Vec<String> = (0..b).map(|i| format!("y{i}")).collect();
    let tmp: Vec<String> = (0..b).map(|i| format!("t{i}")).collect();
    let diverged: String =
        (0..b).map(|i| format!("(x{i} != y{i})")).collect::<Vec<_>>().join(" | ");
    format!(
        "decl round;\nmain() begin\n  decl {xs}, {ys}, {ts};\n\
         {reset}\
         \n  while (*) do\n{incx}{incy}    round := !round;\n{dead}  od;\n\
         \n  if ({diverged}) then HIT: skip; fi;\nend\n",
        xs = xs.join(", "),
        ys = ys.join(", "),
        ts = tmp.join(", "),
        reset = (0..b).map(|i| format!("  x{i} := F;\n  y{i} := F;\n")).collect::<String>(),
        incx = increment("x", b),
        incy = increment("y", b),
        dead = dead_stmt(&tmp, style),
        diverged = diverged,
    )
}

/// Variant C: flips always occur in pairs, so the parity of the globals is
/// invariant; the odd-parity target is unreachable.
fn gen_c(b: usize, style: DeadStyle) -> String {
    let gs: Vec<String> = (0..b).map(|i| format!("g{i}")).collect();
    let locals: Vec<String> = (0..b.min(6)).map(|i| format!("l{i}")).collect();
    let mut flips = String::new();
    for i in 0..b {
        let j = (i + 1) % b;
        flips.push_str(&format!("    if (*) then g{i}, g{j} := !g{i}, !g{j}; fi;\n"));
    }
    // Left-fold the parity xor with explicit parentheses (the expression
    // grammar does not chain `!=`).
    let parity = gs[1..].iter().fold(gs[0].clone(), |acc, g| format!("({acc} != {g})"));
    format!(
        "decl {gs};\nmain() begin\n  decl {ls};\n\
         \n  while (*) do\n{flips}{dead}  od;\n\
         \n  if ({parity}) then HIT: skip; fi;\nend\n",
        gs = gs.join(", "),
        ls = locals.join(", "),
        flips = flips,
        dead = dead_stmt(&locals, style),
        parity = parity,
    )
}

/// The six Figure 2 Terminator rows: A/B/C × iterative/schoose.
pub fn terminator_suite(bits: usize) -> Vec<TerminatorCase> {
    let mut out = Vec::new();
    for variant in [TerminatorVariant::A, TerminatorVariant::B, TerminatorVariant::C] {
        for style in [DeadStyle::Iterative, DeadStyle::Schoose] {
            out.push(terminator(variant, style, bits));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use getafix_boolprog::{explicit_reachable_label, Cfg};

    #[test]
    fn verdicts_match_oracle_small() {
        for case in terminator_suite(3) {
            let cfg = Cfg::build(&case.program).unwrap_or_else(|e| panic!("{}: {e}", case.name));
            let r = explicit_reachable_label(&cfg, &case.label, 5_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", case.name))
                .expect("HIT exists");
            assert_eq!(r.reachable, case.expect_reachable, "{}", case.name);
        }
    }

    #[test]
    fn suite_has_six_rows() {
        assert_eq!(terminator_suite(3).len(), 6);
    }

    #[test]
    fn state_grows_with_bits() {
        let small = terminator(TerminatorVariant::B, DeadStyle::Schoose, 2);
        let big = terminator(TerminatorVariant::B, DeadStyle::Schoose, 5);
        assert!(big.program.metadata().total_locals > small.program.metadata().total_locals);
    }
}
