//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! This workspace builds without network access, so the real crate cannot be
//! fetched; this shim implements the subset of the proptest 1.x API the
//! workspace's property tests use, with the same names and call shapes:
//!
//! * [`Strategy`] with `prop_map`, `prop_recursive` and `boxed`;
//! * [`strategy::any`]`::<T>()`, [`strategy::Just`], integer ranges and
//!   tuples as strategies;
//! * `prop::collection::vec`;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`ProptestConfig::with_cases`].
//!
//! Generation is deterministic: each test derives its RNG seed from the test
//! name and case index, so failures are reproducible run-to-run. Shrinking is
//! not implemented — a failing case panics with the generated inputs'
//! `Debug` representation instead.

use std::rc::Rc;

/// Deterministic splitmix64 RNG used for all generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Errors a test case can raise via `prop_assert!` and friends.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Test-runner configuration (`cases` is the only knob the shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Mirrors proptest's `test_runner` module paths used by the macros.
pub mod test_runner {
    pub use crate::{ProptestConfig, TestCaseError, TestRng};

    /// Minimal runner: hands out per-case RNGs derived from the test name.
    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
    }

    impl TestRunner {
        /// Creates a runner for the named test.
        pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
            // FNV-1a over the test name so each test gets its own stream.
            let mut seed = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100000001b3);
            }
            TestRunner { config, seed }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The RNG for case `i`.
        pub fn rng_for(&self, i: u32) -> TestRng {
            TestRng::from_seed(self.seed.wrapping_add((i as u64).wrapping_mul(0x9E3779B97F4A7C15)))
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A generator of values of one type. The shim's strategies are pure
    /// generators — no shrinking trees.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        /// Recursively expands this leaf strategy. `depth` bounds the
        /// nesting; `_desired_size` and `_expected_branch` are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            let leaf: BoxedStrategy<Self::Value> = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let expanded = recurse(cur.clone()).boxed();
                // Mix in the leaf so generated sizes vary.
                cur = union(vec![leaf.clone(), expanded.clone(), expanded]);
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_value(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Uniform choice among equally-weighted alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].gen_value(rng)
        }
    }

    /// Builds a [`Union`]; used by the `prop_oneof!` macro.
    pub fn union<T>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options).boxed()
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty range strategy");
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// `any::<T>()` support for primitives.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    /// Types with a canonical full-domain strategy.
    pub trait ArbPrim: Sized {
        /// Generates an arbitrary value of the type.
        fn arb(rng: &mut TestRng) -> Self;
    }

    impl ArbPrim for bool {
        fn arb(rng: &mut TestRng) -> bool {
            rng.gen_bool()
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl ArbPrim for $t {
                fn arb(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: ArbPrim> Strategy for AnyStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arb(rng)
        }
    }

    /// The full-domain strategy for a primitive type.
    pub fn any<T: ArbPrim>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// `prop::collection` equivalents.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
}

pub use strategy::{BoxedStrategy, Just, Strategy};

// Keep `Rc` referenced so the top-level import mirrors the module's use.
#[doc(hidden)]
pub type __Rc<T> = Rc<T>;

/// Uniform choice among strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for(case);
                    $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {case}: {e}\ninputs: {:#?}",
                            stringify!($name),
                            ($(&$arg,)+)
                        );
                    }
                }
            }
        )*
    };
}
