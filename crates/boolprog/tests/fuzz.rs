//! Adversarial-input fuzzing for the `.bp`/`.cbp` parsers: whatever
//! bytes arrive, `parse_program` and `parse_concurrent` must return
//! `Ok` or a structured [`ParseError`] — never panic, never overflow
//! the stack, never turn an attacker-chosen number into an allocation.
//!
//! Three input distributions, each probing a different failure class:
//! raw bytes (lexer robustness), token soup drawn from the grammar's
//! own vocabulary (parser state machine, much deeper reach than noise),
//! and mutations of a known-good program (near-miss inputs, the shape
//! a truncated download or a typo actually has).

use getafix_boolprog::{parse_concurrent, parse_program, ParseError};
use proptest::prelude::*;

/// Both entry points on one input; the value of interest is that the
/// calls return at all.
fn parse_both(src: &str) -> (Result<(), ParseError>, Result<(), ParseError>) {
    (parse_program(src).map(|_| ()), parse_concurrent(src).map(|_| ()))
}

/// A structurally plausible program used as the mutation seed.
const SEED: &str = r#"
decl g, h;

main() begin
  decl x, y;
  x := T;
  x, y := f(x, *);
  if (x & !g) then
    ERR: skip;
  else
    y := schoose [x, g];
  fi;
  while (*) do
    call f(T, F);
  od;
  assert (g | !h);
  goto ERR;
end

f(a, b) returns 2 begin
  return a, !b;
end
"#;

/// Every terminal the grammar knows, plus a few near-keywords; a soup
/// of these reaches parser states that uniform random bytes never hit.
const VOCAB: [&str; 38] = [
    "decl",
    "begin",
    "end",
    "skip",
    "goto",
    "return",
    "returns",
    "if",
    "then",
    "else",
    "fi",
    "while",
    "do",
    "od",
    "assert",
    "assume",
    "call",
    "dead",
    "schoose",
    "thread",
    "T",
    "F",
    "main",
    "x",
    "g",
    "ERR",
    "f",
    "(",
    ")",
    "[",
    "]",
    ",",
    ";",
    ":",
    ":=",
    "!",
    "0",
    "18446744073709551616",
];

fn token_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0..VOCAB.len(), 0..64)
        .prop_map(|picks| picks.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes (lossily decoded) never panic either parser.
    #[test]
    fn raw_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = parse_both(&src);
    }

    /// Grammar-vocabulary soup never panics either parser, and whenever
    /// a soup happens to parse, pretty-printing it re-parses — the
    /// round-trip invariant holds even for degenerate accepted inputs.
    #[test]
    fn token_soup_never_panics(src in token_soup()) {
        if let Ok(p) = parse_program(&src) {
            let printed = p.to_string();
            prop_assert!(
                parse_program(&printed).is_ok(),
                "accepted soup failed to round-trip:\n{printed}"
            );
        }
        let _ = parse_concurrent(&src);
    }

    /// Near-miss inputs: the seed program truncated at an arbitrary
    /// byte, with arbitrary bytes spliced in. Must never panic, and
    /// errors must carry a position inside the (line-count of the) input.
    #[test]
    fn mutated_seed_never_panics(
        cut in 0..SEED.len(),
        splice in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut src = SEED.as_bytes()[..cut].to_vec();
        src.extend_from_slice(&splice);
        src.extend_from_slice(&SEED.as_bytes()[cut..]);
        let src = String::from_utf8_lossy(&src);
        let lines = src.lines().count() + 1;
        for r in [parse_program(&src).map(|_| ()), parse_concurrent(&src).map(|_| ())] {
            if let Err(e) = r {
                prop_assert!(
                    e.line <= lines,
                    "error line {} beyond the {} input lines: {e}", e.line, lines
                );
            }
        }
    }
}

/// A hostile `returns` count is rejected at parse time instead of
/// becoming a giant `ret_exprs` allocation during CFG lowering.
#[test]
fn huge_returns_count_is_a_parse_error() {
    let err = parse_program("f() returns 18446744073709551615 begin end")
        .expect_err("absurd returns count must not parse");
    assert!(err.message.contains("exceeds the supported maximum"), "{err}");
    // The bound itself is generous: a wide-but-sane count still parses.
    assert!(parse_program("f() returns 1024 begin end").is_ok());
}

/// An integer literal past `u64` is a lex error, not a panic.
#[test]
fn overflowing_integer_literal_is_a_parse_error() {
    let err = parse_program("f() returns 99999999999999999999 begin end")
        .expect_err("overflowing literal must not lex");
    assert!(err.message.contains("out of range"), "{err}");
}

/// Pathological nesting is a structured error, not a stack overflow:
/// recursive descent turns input nesting into call-stack depth, so
/// without the parser's depth bound each of these would abort the
/// process instead of returning.
#[test]
fn deep_nesting_is_a_parse_error() {
    let parens = format!("main() begin x := {}T{}; end", "(".repeat(200_000), ")".repeat(200_000));
    let err = parse_program(&parens).expect_err("200k parens must not parse");
    assert!(err.message.contains("nesting deeper than"), "{err}");

    let nots = format!("main() begin x := {}T; end", "!".repeat(200_000));
    assert!(parse_program(&nots).expect_err("200k nots").message.contains("nesting deeper than"));

    let ifs = format!(
        "main() begin {} skip; {} end",
        "if (T) then ".repeat(100_000),
        "fi; ".repeat(100_000)
    );
    assert!(parse_program(&ifs).expect_err("100k ifs").message.contains("nesting deeper than"));

    // Sequential (non-nested) length is unbounded: depth is released
    // statement by statement, so a long flat program still parses.
    let flat = format!("main() begin {} end", "skip; ".repeat(10_000));
    assert!(parse_program(&flat).is_ok());
}
