//! Property-based tests: pretty-print ∘ parse round-trips on randomly
//! generated programs, and CFG lowering never panics on valid inputs.

use getafix_boolprog::{parse_program, Cfg, Expr, Proc, Program, Stmt, StmtKind};
use proptest::prelude::*;

const VARS: [&str; 4] = ["g0", "g1", "x", "y"];

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        Just(Expr::Nondet),
        (0..VARS.len()).prop_map(|i| Expr::var(VARS[i])),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Eq(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Ne(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Schoose(Box::new(a), Box::new(b))),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let base = prop_oneof![
        Just(StmtKind::Skip),
        (0..2usize, expr_strategy())
            .prop_map(|(i, e)| StmtKind::Assign { targets: vec![VARS[i].into()], exprs: vec![e] }),
        (expr_strategy(), expr_strategy()).prop_map(|(a, b)| StmtKind::Assign {
            targets: vec!["x".into(), "y".into()],
            exprs: vec![a, b],
        }),
        expr_strategy().prop_map(StmtKind::Assume),
        expr_strategy().prop_map(StmtKind::Assert),
        Just(StmtKind::Dead(vec!["x".into(), "y".into()])),
        expr_strategy().prop_map(|e| StmtKind::CallAssign {
            targets: vec!["x".into()],
            callee: "f".into(),
            args: vec![e],
        }),
    ];
    let kinds = base.prop_recursive(3, 16, 3, |inner| {
        let stmt = inner.prop_map(Stmt::new);
        prop_oneof![
            (
                expr_strategy(),
                prop::collection::vec(stmt.clone(), 1..3),
                prop::collection::vec(stmt.clone(), 0..2)
            )
                .prop_map(|(c, t, e)| StmtKind::If {
                    cond: c,
                    then_branch: t,
                    else_branch: e
                }),
            (expr_strategy(), prop::collection::vec(stmt, 1..3))
                .prop_map(|(c, b)| StmtKind::While { cond: c, body: b }),
        ]
    });
    kinds.prop_map(Stmt::new)
}

fn program_strategy() -> impl Strategy<Value = Program> {
    prop::collection::vec(stmt_strategy(), 1..6).prop_map(|body| Program {
        globals: vec!["g0".into(), "g1".into()],
        procs: vec![
            Proc {
                name: "main".into(),
                params: vec![],
                returns: 0,
                locals: vec!["x".into(), "y".into()],
                body,
            },
            Proc {
                name: "f".into(),
                params: vec!["x".into()],
                returns: 1,
                locals: vec!["y".into()],
                body: vec![Stmt::new(StmtKind::Return(vec![Expr::var("x")]))],
            },
        ],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Pretty-printing then parsing reproduces the AST exactly (up to
    /// source-line metadata, which parsing fills in and generation omits).
    #[test]
    fn print_parse_roundtrip(p in program_strategy()) {
        let printed = p.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("{e}\n{printed}"));
        prop_assert_eq!(p, reparsed.without_lines());
    }

    /// CFG lowering succeeds on every generated (valid) program, covers
    /// every statement pc, and keeps procedure ranges disjoint.
    #[test]
    fn cfg_builds_and_is_dense(p in program_strategy()) {
        let cfg = Cfg::build(&p).unwrap_or_else(|e| panic!("{e}\n{p}"));
        let mut covered = vec![false; cfg.pc_count as usize];
        for proc in &cfg.procs {
            for pc in proc.pc_range.0..proc.pc_range.1 {
                prop_assert!(!covered[pc as usize]);
                covered[pc as usize] = true;
            }
        }
        prop_assert!(covered.iter().all(|&b| b));
        // Every edge targets a pc inside the same procedure; call edges
        // target real procedures.
        for proc in &cfg.procs {
            for edges in proc.edges.values() {
                for e in edges {
                    match e {
                        getafix_boolprog::Edge::Internal { to, .. } => {
                            prop_assert!(proc.contains(*to));
                        }
                        getafix_boolprog::Edge::Call { callee, ret_to, .. } => {
                            prop_assert!(*callee < cfg.procs.len());
                            prop_assert!(proc.contains(*ret_to));
                        }
                    }
                }
            }
        }
    }
}
