//! Explicit-state summary-based reachability: the ground-truth oracle.
//!
//! This is the classical Sharir–Pnueli / Reps–Horwitz–Sagiv functional
//! summary algorithm run over *explicit* states (bit vectors in `u64`s)
//! instead of BDDs. It is sound and complete for recursive Boolean programs
//! — the same problem the symbolic engines solve — and being a separate,
//! far simpler code path it serves as the differential-testing oracle for
//! all of them.
//!
//! Intended for small programs (the regression suite); the `max_states`
//! limit turns state explosion into an error instead of a hang.

use crate::bits::{enumerate_choices, next_states, read_var, write_var, Bits};
use crate::cfg::{Cfg, Edge, Pc, ProcId, VarRef};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Errors from the explicit engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplicitError {
    /// More than 64 globals or locals in one frame.
    TooManyVariables(String),
    /// The `max_states` limit was hit.
    StateLimit(usize),
}

impl fmt::Display for ExplicitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplicitError::TooManyVariables(msg) => write!(f, "{msg}"),
            ExplicitError::StateLimit(n) => write!(f, "explicit state limit {n} exceeded"),
        }
    }
}

impl std::error::Error for ExplicitError {}

/// Result of an explicit reachability run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplicitResult {
    /// Was any target pc reached?
    pub reachable: bool,
    /// Number of distinct path edges explored.
    pub path_edges: usize,
}

/// A state inside a procedure: (pc, globals, locals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct State {
    pc: Pc,
    globals: Bits,
    locals: Bits,
}

/// Entry key for summaries: the state at procedure entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct EntryKey {
    proc: ProcId,
    globals: Bits,
    locals: Bits,
}

/// A pending return target: who to resume when a summary appears.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CallerCtx {
    caller: ProcId,
    caller_entry_globals: Bits,
    caller_entry_locals: Bits,
    /// Caller locals at the call site (for the frame condition).
    locals_at_call: Bits,
    ret_to: Pc,
}

/// Explicit reachability of any pc in `targets`, starting from `main` with
/// all variables false.
///
/// # Errors
///
/// Returns [`ExplicitError::TooManyVariables`] when a frame exceeds 64 bits
/// and [`ExplicitError::StateLimit`] when exploration exceeds `max_states`
/// path edges.
pub fn explicit_reachable(
    cfg: &Cfg,
    targets: &[Pc],
    max_states: usize,
) -> Result<ExplicitResult, ExplicitError> {
    if cfg.globals.len() > 64 {
        return Err(ExplicitError::TooManyVariables(format!(
            "{} globals exceed the explicit engine's 64-bit frame",
            cfg.globals.len()
        )));
    }
    for p in &cfg.procs {
        if p.n_locals() > 64 {
            return Err(ExplicitError::TooManyVariables(format!(
                "procedure `{}` has {} locals (explicit limit is 64)",
                p.name,
                p.n_locals()
            )));
        }
    }
    let target_set: BTreeSet<Pc> = targets.iter().copied().collect();

    // Path edges per procedure: entry -> set of states.
    let mut path: BTreeMap<EntryKey, BTreeSet<State>> = BTreeMap::new();
    // Summaries: entry -> exit states (at exit pcs, with their ret exprs).
    let mut summaries: BTreeMap<EntryKey, BTreeSet<State>> = BTreeMap::new();
    // Callers waiting on an entry.
    let mut callers: BTreeMap<EntryKey, Vec<(CallerCtx, Vec<VarRef>)>> = BTreeMap::new();

    let mut work: VecDeque<(EntryKey, State)> = VecDeque::new();
    let mut edges_seen = 0usize;

    let main = &cfg.procs[cfg.main];
    let seed_entry = EntryKey { proc: cfg.main, globals: 0, locals: 0 };
    let seed_state = State { pc: main.entry, globals: 0, locals: 0 };
    path.entry(seed_entry).or_default().insert(seed_state);
    work.push_back((seed_entry, seed_state));

    let mut reachable = false;

    macro_rules! push_edge {
        ($entry:expr, $state:expr) => {{
            let entry = $entry;
            let state = $state;
            if path.entry(entry).or_default().insert(state) {
                edges_seen += 1;
                if edges_seen > max_states {
                    return Err(ExplicitError::StateLimit(max_states));
                }
                if target_set.contains(&state.pc) {
                    reachable = true;
                }
                work.push_back((entry, state));
            }
        }};
    }

    // Seed target check (entry state itself).
    if target_set.contains(&seed_state.pc) {
        reachable = true;
    }

    while let Some((entry, state)) = work.pop_front() {
        if reachable {
            break;
        }
        let proc = &cfg.procs[entry.proc];

        // Exit handling: record a summary and resume waiting callers.
        if proc.is_exit(state.pc) {
            let is_new = summaries.entry(entry).or_default().insert(state);
            if is_new {
                let waiting = callers.get(&entry).cloned().unwrap_or_default();
                for (ctx, rets) in waiting {
                    for resumed in apply_return(cfg, entry.proc, state, &ctx, &rets) {
                        let centry = EntryKey {
                            proc: ctx.caller,
                            globals: ctx.caller_entry_globals,
                            locals: ctx.caller_entry_locals,
                        };
                        push_edge!(centry, resumed);
                    }
                }
            }
        }

        let Some(out_edges) = proc.edges.get(&state.pc) else { continue };
        for edge in out_edges {
            match edge {
                Edge::Internal { to, guard, assigns } => {
                    let read = |v: VarRef| read_var(state.globals, state.locals, v);
                    let (can_true, _) = guard.value_set(&read);
                    if !can_true {
                        continue;
                    }
                    for (g2, l2) in next_states(state.globals, state.locals, assigns) {
                        push_edge!(entry, State { pc: *to, globals: g2, locals: l2 });
                    }
                }
                Edge::Call { callee, args, rets, ret_to } => {
                    let read = |v: VarRef| read_var(state.globals, state.locals, v);
                    // Each argument independently ranges over its value set.
                    let arg_sets: Vec<(bool, bool)> =
                        args.iter().map(|a| a.value_set(&read)).collect();
                    for arg_vals in enumerate_choices(&arg_sets) {
                        let mut callee_locals: Bits = 0;
                        for (i, &v) in arg_vals.iter().enumerate() {
                            if v {
                                callee_locals |= 1 << i;
                            }
                        }
                        let centry = EntryKey {
                            proc: *callee,
                            globals: state.globals,
                            locals: callee_locals,
                        };
                        let ctx = CallerCtx {
                            caller: entry.proc,
                            caller_entry_globals: entry.globals,
                            caller_entry_locals: entry.locals,
                            locals_at_call: state.locals,
                            ret_to: *ret_to,
                        };
                        callers.entry(centry).or_default().push((ctx, rets.clone()));
                        // Seed the callee.
                        let callee_cfg = &cfg.procs[*callee];
                        push_edge!(
                            centry,
                            State {
                                pc: callee_cfg.entry,
                                globals: state.globals,
                                locals: callee_locals
                            }
                        );
                        // Apply any summaries already computed.
                        if let Some(sums) = summaries.get(&centry) {
                            let sums: Vec<State> = sums.iter().copied().collect();
                            for exit_state in sums {
                                for resumed in apply_return(cfg, *callee, exit_state, &ctx, rets) {
                                    push_edge!(entry, resumed);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    Ok(ExplicitResult { reachable, path_edges: edges_seen })
}

/// Reachability of a named label; `None` when the label does not exist.
///
/// # Errors
///
/// See [`explicit_reachable`].
pub fn explicit_reachable_label(
    cfg: &Cfg,
    label: &str,
    max_states: usize,
) -> Result<Option<ExplicitResult>, ExplicitError> {
    match cfg.label(label) {
        Some(pc) => explicit_reachable(cfg, &[pc], max_states).map(Some),
        None => Ok(None),
    }
}

/// States the caller resumes in when `callee` exits in `exit_state`.
fn apply_return(
    cfg: &Cfg,
    callee: ProcId,
    exit_state: State,
    ctx: &CallerCtx,
    rets: &[VarRef],
) -> Vec<State> {
    let proc = &cfg.procs[callee];
    let exit = proc.exits.iter().find(|e| e.pc == exit_state.pc).expect("exit state at an exit pc");
    let read = |v: VarRef| read_var(exit_state.globals, exit_state.locals, v);
    let sets: Vec<(bool, bool)> = exit.ret_exprs.iter().map(|e| e.value_set(&read)).collect();
    enumerate_choices(&sets)
        .into_iter()
        .map(|vals| {
            let mut g2 = exit_state.globals;
            let mut l2 = ctx.locals_at_call;
            for (target, v) in rets.iter().zip(vals) {
                write_var(&mut g2, &mut l2, *target, v);
            }
            State { pc: ctx.ret_to, globals: g2, locals: l2 }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn reach(src: &str, label: &str) -> bool {
        let cfg = Cfg::build(&parse_program(src).unwrap()).unwrap();
        explicit_reachable_label(&cfg, label, 1_000_000).unwrap().expect("label exists").reachable
    }

    #[test]
    fn straight_line_reachable() {
        assert!(reach(
            r#"
            decl g;
            main() begin
              g := T;
              if (g) then HIT: skip; fi;
            end
            "#,
            "HIT"
        ));
    }

    #[test]
    fn contradictory_guard_unreachable() {
        assert!(!reach(
            r#"
            decl g;
            main() begin
              g := F;
              if (g) then HIT: skip; fi;
            end
            "#,
            "HIT"
        ));
    }

    #[test]
    fn nondet_reaches_both_branches() {
        let src = r#"
            main() begin
              decl x;
              x := *;
              if (x) then A: skip; else B: skip; fi;
            end
        "#;
        assert!(reach(src, "A"));
        assert!(reach(src, "B"));
    }

    #[test]
    fn call_and_return_values() {
        assert!(reach(
            r#"
            decl g;
            main() begin
              decl x;
              x := id(T);
              if (x) then HIT: skip; fi;
            end
            id(a) returns 1 begin
              return a;
            end
            "#,
            "HIT"
        ));
        assert!(!reach(
            r#"
            decl g;
            main() begin
              decl x;
              x := id(F);
              if (x) then HIT: skip; fi;
            end
            id(a) returns 1 begin
              return a;
            end
            "#,
            "HIT"
        ));
    }

    #[test]
    fn recursion_terminates_and_answers() {
        // Recursive procedure flipping a bit: even depths reach, the
        // summary algorithm must terminate despite unbounded recursion.
        assert!(reach(
            r#"
            decl g;
            main() begin
              call rec();
              if (g) then HIT: skip; fi;
            end
            rec() begin
              if (*) then
                g := !g;
                call rec();
              fi;
            end
            "#,
            "HIT"
        ));
    }

    #[test]
    fn globals_propagate_through_calls() {
        assert!(reach(
            r#"
            decl g;
            main() begin
              call set();
              if (g) then HIT: skip; fi;
            end
            set() begin
              g := T;
            end
            "#,
            "HIT"
        ));
    }

    #[test]
    fn locals_restored_after_call() {
        // The callee cannot clobber caller locals.
        assert!(!reach(
            r#"
            main() begin
              decl x;
              x := F;
              call other();
              if (x) then HIT: skip; fi;
            end
            other() begin
              decl x;
              x := T;
            end
            "#,
            "HIT"
        ));
    }

    #[test]
    fn assume_blocks() {
        assert!(!reach(
            r#"
            main() begin
              decl x;
              x := F;
              assume (x);
              HIT: skip;
            end
            "#,
            "HIT"
        ));
    }

    #[test]
    fn assert_failure_reaches_sink() {
        let src = r#"
            decl g;
            main() begin
              g := *;
              assert (g);
            end
        "#;
        let cfg = Cfg::build(&parse_program(src).unwrap()).unwrap();
        let sinks = cfg.assert_sinks();
        let r = explicit_reachable(&cfg, &sinks, 10_000).unwrap();
        assert!(r.reachable);
    }

    #[test]
    fn schoose_constrained() {
        // schoose [F, T] is always F.
        assert!(!reach(
            r#"
            main() begin
              decl x;
              x := schoose [F, T];
              if (x) then HIT: skip; fi;
            end
            "#,
            "HIT"
        ));
        // schoose [F, F] is free.
        assert!(reach(
            r#"
            main() begin
              decl x;
              x := schoose [F, F];
              if (x) then HIT: skip; fi;
            end
            "#,
            "HIT"
        ));
    }

    #[test]
    fn state_limit_enforced() {
        let src = r#"
            main() begin
              decl a, b, c, d;
              while (*) do
                a, b, c, d := *, *, *, *;
              od;
            end
        "#;
        let cfg = Cfg::build(&parse_program(src).unwrap()).unwrap();
        let err = explicit_reachable(&cfg, &[9999], 3).unwrap_err();
        assert!(matches!(err, ExplicitError::StateLimit(3)));
    }

    #[test]
    fn unbounded_recursion_with_local_counter() {
        // Each frame gets fresh locals; the summary algorithm handles the
        // unbounded stack without diverging.
        assert!(reach(
            r#"
            decl g;
            main() begin
              call f(F);
              if (g) then HIT: skip; fi;
            end
            f(depth) begin
              if (!depth) then
                call f(T);
              else
                g := T;
              fi;
            end
            "#,
            "HIT"
        ));
    }
}
