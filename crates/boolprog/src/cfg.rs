//! Control-flow graph lowering.
//!
//! The CFG is the interface every engine (the Getafix fixed-point
//! algorithms, the Bebop-style worklist, the pushdown-system baselines and
//! the explicit-state oracle) consumes. Lowering also performs all semantic
//! checks: name resolution, arity checks, label resolution, and the
//! structural restrictions §2 imposes (`main` exists, is not called, a
//! `return` in `f^{h,k}` returns exactly `k` values).
//!
//! # Program points
//!
//! Program counters are dense `u32`s, unique across the whole program; each
//! statement gets the pc *before* it executes, each procedure gets one
//! `exit` pc ("after the last line", per §4's Exit template), and a single
//! distinguished `error` pc serves as the target of failed `assert`s.
//!
//! # Variable initialization
//!
//! All variables start `false`: globals at program start and callee locals
//! at procedure entry (parameters are set from the call arguments). The
//! paper leaves initial valuations unconstrained; pinning them keeps every
//! engine and the explicit oracle pointwise comparable (see DESIGN.md).
//! Workloads that need nondeterministic initial state assign `*` up front.

use crate::ast::{Expr, Program, Stmt, StmtKind};
use std::collections::BTreeMap;
use std::fmt;

/// A program counter (dense, program-wide).
pub type Pc = u32;

/// A procedure index into [`Cfg::procs`].
pub type ProcId = usize;

/// A resolved variable reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VarRef {
    /// Index into the global variable vector.
    Global(usize),
    /// Index into the current procedure's local vector (parameters first).
    Local(usize),
}

/// An expression with resolved variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LExpr {
    /// Constant.
    Const(bool),
    /// Nondeterministic bit.
    Nondet,
    /// Resolved variable.
    Var(VarRef),
    /// Negation.
    Not(Box<LExpr>),
    /// Conjunction.
    And(Box<LExpr>, Box<LExpr>),
    /// Disjunction.
    Or(Box<LExpr>, Box<LExpr>),
    /// Biconditional.
    Eq(Box<LExpr>, Box<LExpr>),
    /// Exclusive or.
    Ne(Box<LExpr>, Box<LExpr>),
    /// Bebop's constrained choice.
    Schoose(Box<LExpr>, Box<LExpr>),
}

impl LExpr {
    /// The set of values the expression can take in the given state:
    /// `(can_be_true, can_be_false)`.
    pub fn value_set(&self, read: &impl Fn(VarRef) -> bool) -> (bool, bool) {
        match self {
            LExpr::Const(b) => (*b, !*b),
            LExpr::Nondet => (true, true),
            LExpr::Var(v) => {
                let b = read(*v);
                (b, !b)
            }
            LExpr::Not(e) => {
                let (t, f) = e.value_set(read);
                (f, t)
            }
            LExpr::And(a, b) => {
                let (at, af) = a.value_set(read);
                let (bt, bf) = b.value_set(read);
                (at && bt, af || bf)
            }
            LExpr::Or(a, b) => {
                let (at, af) = a.value_set(read);
                let (bt, bf) = b.value_set(read);
                (at || bt, af && bf)
            }
            LExpr::Eq(a, b) => {
                let (at, af) = a.value_set(read);
                let (bt, bf) = b.value_set(read);
                (at && bt || af && bf, at && bf || af && bt)
            }
            LExpr::Ne(a, b) => {
                let (at, af) = a.value_set(read);
                let (bt, bf) = b.value_set(read);
                (at && bf || af && bt, at && bt || af && bf)
            }
            LExpr::Schoose(pos, neg) => {
                // T when pos; F when !pos & neg; otherwise free.
                let (pt, pf) = pos.value_set(read);
                let (nt, nf) = neg.value_set(read);
                let can_true = pt || (pf && nf);
                let can_false = pf && (nt || nf);
                (can_true, can_false)
            }
        }
    }

    /// All variables read by the expression.
    pub fn vars(&self) -> Vec<VarRef> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<VarRef>) {
        match self {
            LExpr::Const(_) | LExpr::Nondet => {}
            LExpr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            LExpr::Not(e) => e.collect(out),
            LExpr::And(a, b)
            | LExpr::Or(a, b)
            | LExpr::Eq(a, b)
            | LExpr::Ne(a, b)
            | LExpr::Schoose(a, b) => {
                a.collect(out);
                b.collect(out);
            }
        }
    }
}

/// An outgoing CFG edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edge {
    /// An intra-procedural step: feasible when `guard` can be true;
    /// executes the parallel `assigns` (unassigned variables keep their
    /// values).
    Internal {
        /// Destination pc (same procedure).
        to: Pc,
        /// Feasibility condition.
        guard: LExpr,
        /// Parallel assignment.
        assigns: Vec<(VarRef, LExpr)>,
    },
    /// A procedure call. Control moves to the callee's entry; on return it
    /// resumes at `ret_to` with `rets` assigned from the callee's return
    /// expressions.
    Call {
        /// The called procedure.
        callee: ProcId,
        /// Actual arguments (evaluated in the caller).
        args: Vec<LExpr>,
        /// Caller variables receiving the return values.
        rets: Vec<VarRef>,
        /// The pc after the call (same procedure as the call).
        ret_to: Pc,
    },
}

/// An exit point of a procedure: a `return` statement or the implicit exit
/// after the last statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExitPoint {
    /// The exit pc.
    pub pc: Pc,
    /// Return-value expressions (evaluated in the exiting state); empty for
    /// `k = 0` procedures.
    pub ret_exprs: Vec<LExpr>,
}

/// A lowered procedure.
#[derive(Debug, Clone)]
pub struct ProcCfg {
    /// Procedure name.
    pub name: String,
    /// Dense id (index into [`Cfg::procs`]).
    pub id: ProcId,
    /// Number of formal parameters (a prefix of the locals).
    pub params: usize,
    /// Number of return values.
    pub returns: usize,
    /// Local variable names, parameters first.
    pub locals: Vec<String>,
    /// Entry pc.
    pub entry: Pc,
    /// Pcs of this procedure, contiguous: `pc_range.0 .. pc_range.1`.
    pub pc_range: (Pc, Pc),
    /// Outgoing edges per pc.
    pub edges: BTreeMap<Pc, Vec<Edge>>,
    /// Exit points.
    pub exits: Vec<ExitPoint>,
    /// The sink pc failed `assert`s in this procedure jump to, if any.
    pub error_pc: Option<Pc>,
}

impl ProcCfg {
    /// Number of local variables (including parameters).
    pub fn n_locals(&self) -> usize {
        self.locals.len()
    }

    /// Does `pc` belong to this procedure?
    pub fn contains(&self, pc: Pc) -> bool {
        self.pc_range.0 <= pc && pc < self.pc_range.1
    }

    /// Is `pc` one of this procedure's exit points?
    pub fn is_exit(&self, pc: Pc) -> bool {
        self.exits.iter().any(|e| e.pc == pc)
    }
}

/// The lowered program.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Global variable names.
    pub globals: Vec<String>,
    /// Lowered procedures; `procs[main]` is the entry procedure.
    pub procs: Vec<ProcCfg>,
    /// Index of `main`.
    pub main: ProcId,
    /// Total number of pcs (dense `0..pc_count`).
    pub pc_count: u32,
    /// Label → pc map (reachability targets).
    pub labels: BTreeMap<String, Pc>,
    /// pc → 1-based source line, for statements whose AST carried one
    /// (parsed programs; programmatically built ASTs leave this empty).
    pub lines: BTreeMap<Pc, u32>,
}

impl Cfg {
    /// The pcs failed `assert`s jump to, across all procedures.
    pub fn assert_sinks(&self) -> Vec<Pc> {
        self.procs.iter().filter_map(|p| p.error_pc).collect()
    }
}

/// A semantic error found during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError(pub String);

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for BuildError {}

impl Cfg {
    /// Lowers (and checks) a program.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for: duplicate declarations, unknown
    /// variables or procedures, call arity or return-count mismatches,
    /// duplicate or unresolved labels, a missing `main`, calls to `main`,
    /// or a `return` with values in a `k = 0` context.
    pub fn build(program: &Program) -> Result<Cfg, BuildError> {
        Builder::new(program)?.lower()
    }

    /// The procedure owning `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn proc_of(&self, pc: Pc) -> &ProcCfg {
        self.procs
            .iter()
            .find(|p| p.contains(pc))
            .unwrap_or_else(|| panic!("pc {pc} belongs to no procedure"))
    }

    /// Looks up a procedure by name.
    pub fn proc_by_name(&self, name: &str) -> Option<&ProcCfg> {
        self.procs.iter().find(|p| p.name == name)
    }

    /// The pc a reachability label names, if declared.
    pub fn label(&self, name: &str) -> Option<Pc> {
        self.labels.get(name).copied()
    }

    /// The 1-based source line of the statement at `pc`, if known.
    pub fn line_of(&self, pc: Pc) -> Option<u32> {
        self.lines.get(&pc).copied()
    }

    /// Widest local frame across procedures.
    pub fn max_locals(&self) -> usize {
        self.procs.iter().map(|p| p.n_locals()).max().unwrap_or(0)
    }
}

struct Builder<'a> {
    program: &'a Program,
    proc_ids: BTreeMap<String, ProcId>,
    next_pc: Pc,
    labels: BTreeMap<String, Pc>,
    lines: BTreeMap<Pc, u32>,
    /// Error sink of the procedure currently being lowered.
    current_error_pc: Option<Pc>,
}

struct ProcLowering<'a> {
    globals: &'a BTreeMap<String, usize>,
    locals: BTreeMap<String, usize>,
    edges: BTreeMap<Pc, Vec<Edge>>,
    exits: Vec<ExitPoint>,
    /// goto fixups: (source pc, label).
    gotos: Vec<(Pc, String)>,
    returns: usize,
    proc_name: String,
}

impl<'a> Builder<'a> {
    fn new(program: &'a Program) -> Result<Builder<'a>, BuildError> {
        let mut proc_ids = BTreeMap::new();
        for (i, p) in program.procs.iter().enumerate() {
            if proc_ids.insert(p.name.clone(), i).is_some() {
                return Err(BuildError(format!("procedure `{}` declared twice", p.name)));
            }
        }
        if !proc_ids.contains_key("main") {
            return Err(BuildError("program has no `main` procedure".into()));
        }
        Ok(Builder {
            program,
            proc_ids,
            next_pc: 0,
            labels: BTreeMap::new(),
            lines: BTreeMap::new(),
            current_error_pc: None,
        })
    }

    fn fresh_pc(&mut self) -> Pc {
        let pc = self.next_pc;
        self.next_pc += 1;
        pc
    }

    fn lower(mut self) -> Result<Cfg, BuildError> {
        let mut globals = BTreeMap::new();
        for (i, g) in self.program.globals.iter().enumerate() {
            if globals.insert(g.clone(), i).is_some() {
                return Err(BuildError(format!("global `{g}` declared twice")));
            }
        }
        let main_has_params = self.program.proc("main").map(|p| !p.params.is_empty());
        if main_has_params == Some(true) {
            return Err(BuildError("`main` must not take parameters".into()));
        }

        let mut procs = Vec::new();
        for (id, p) in self.program.procs.iter().enumerate() {
            let mut locals = BTreeMap::new();
            for (i, l) in p.params.iter().chain(&p.locals).enumerate() {
                if globals.contains_key(l) {
                    return Err(BuildError(format!(
                        "`{l}` in `{}` shadows a global (globals and locals must be disjoint)",
                        p.name
                    )));
                }
                if locals.insert(l.clone(), i).is_some() {
                    return Err(BuildError(format!("local `{l}` declared twice in `{}`", p.name)));
                }
            }
            let mut pl = ProcLowering {
                globals: &globals,
                locals,
                edges: BTreeMap::new(),
                exits: Vec::new(),
                gotos: Vec::new(),
                returns: p.returns,
                proc_name: p.name.clone(),
            };
            let start_pc = self.next_pc;
            // Per-procedure error sink for failed asserts, allocated inside
            // this procedure's pc range so `proc_of` works on it.
            self.current_error_pc = if contains_assert(&p.body) {
                let pc = self.fresh_pc();
                if self.labels.insert(format!("__assert_fail_{}", p.name), pc).is_some() {
                    return Err(BuildError(format!(
                        "label `__assert_fail_{}` declared twice",
                        p.name
                    )));
                }
                Some(pc)
            } else {
                None
            };
            // Implicit exit pc ("after the last line"). Lower the body with
            // that as the fall-through continuation.
            let exit_pc = self.fresh_pc();
            let entry = self.lower_block(&mut pl, &p.body, exit_pc)?;
            if p.returns > 0 {
                // The implicit exit is only legal for k = 0 procedures; if
                // it is reachable the program is malformed — but
                // reachability is semantic, so accept it structurally and
                // let it carry no return values only when k = 0.
                pl.exits.push(ExitPoint {
                    pc: exit_pc,
                    ret_exprs: vec![LExpr::Const(false); p.returns],
                });
            } else {
                pl.exits.push(ExitPoint { pc: exit_pc, ret_exprs: Vec::new() });
            }
            // Resolve gotos.
            for (src, label) in std::mem::take(&mut pl.gotos) {
                let Some(&target) = self.labels.get(&label) else {
                    return Err(BuildError(format!(
                        "goto to unknown label `{label}` in `{}`",
                        p.name
                    )));
                };
                pl.edges.entry(src).or_default().push(Edge::Internal {
                    to: target,
                    guard: LExpr::Const(true),
                    assigns: Vec::new(),
                });
            }
            let end_pc = self.next_pc;
            let locals_vec: Vec<String> = p.params.iter().chain(&p.locals).cloned().collect();
            procs.push(ProcCfg {
                name: p.name.clone(),
                id,
                params: p.params.len(),
                returns: p.returns,
                locals: locals_vec,
                entry,
                pc_range: (start_pc, end_pc),
                edges: pl.edges,
                exits: pl.exits,
                error_pc: self.current_error_pc,
            });
        }

        // `main` must not be called.
        for p in &procs {
            for edges in p.edges.values() {
                for e in edges {
                    if let Edge::Call { callee, .. } = e {
                        if *callee == self.proc_ids["main"] {
                            return Err(BuildError("`main` must not be called".into()));
                        }
                    }
                }
            }
        }

        Ok(Cfg {
            globals: self.program.globals.clone(),
            main: self.proc_ids["main"],
            procs,
            pc_count: self.next_pc,
            labels: self.labels,
            lines: self.lines,
        })
    }

    /// Lowers a statement block; returns its entry pc. `follow` is where
    /// control continues after the block.
    fn lower_block(
        &mut self,
        pl: &mut ProcLowering<'_>,
        stmts: &[Stmt],
        follow: Pc,
    ) -> Result<Pc, BuildError> {
        if stmts.is_empty() {
            return Ok(follow);
        }
        // Allocate a pc per statement up front so labels and sequencing can
        // refer forward.
        let pcs: Vec<Pc> = stmts.iter().map(|_| self.fresh_pc()).collect();
        for (i, s) in stmts.iter().enumerate() {
            if let Some(line) = s.line {
                self.lines.insert(pcs[i], line);
            }
            if let Some(label) = &s.label {
                if self.labels.insert(label.clone(), pcs[i]).is_some() {
                    return Err(BuildError(format!("label `{label}` declared twice")));
                }
            }
        }
        for (i, s) in stmts.iter().enumerate() {
            let here = pcs[i];
            let next = if i + 1 < stmts.len() { pcs[i + 1] } else { follow };
            self.lower_stmt(pl, s, here, next)?;
        }
        Ok(pcs[0])
    }

    fn lower_stmt(
        &mut self,
        pl: &mut ProcLowering<'_>,
        stmt: &Stmt,
        here: Pc,
        next: Pc,
    ) -> Result<(), BuildError> {
        match &stmt.kind {
            StmtKind::Skip => {
                pl.push_internal(here, next, LExpr::Const(true), Vec::new());
                Ok(())
            }
            StmtKind::Assign { targets, exprs } => {
                if targets.len() != exprs.len() {
                    return Err(BuildError(format!(
                        "assignment arity mismatch in `{}`: {} targets, {} expressions",
                        pl.proc_name,
                        targets.len(),
                        exprs.len()
                    )));
                }
                let mut assigns = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for (t, e) in targets.iter().zip(exprs) {
                    let tv = pl.resolve(t)?;
                    if !seen.insert(tv) {
                        return Err(BuildError(format!(
                            "variable `{t}` assigned twice in one parallel assignment"
                        )));
                    }
                    assigns.push((tv, pl.lower_expr(e)?));
                }
                pl.push_internal(here, next, LExpr::Const(true), assigns);
                Ok(())
            }
            StmtKind::CallAssign { targets, callee, args } => {
                self.lower_call(pl, here, next, callee, args, targets)
            }
            StmtKind::Call { callee, args } => self.lower_call(pl, here, next, callee, args, &[]),
            StmtKind::Return(exprs) => {
                if exprs.len() != pl.returns {
                    return Err(BuildError(format!(
                        "`{}` returns {} values but a return statement has {}",
                        pl.proc_name,
                        pl.returns,
                        exprs.len()
                    )));
                }
                let ret_exprs =
                    exprs.iter().map(|e| pl.lower_expr(e)).collect::<Result<Vec<_>, _>>()?;
                pl.exits.push(ExitPoint { pc: here, ret_exprs });
                Ok(())
            }
            StmtKind::If { cond, then_branch, else_branch } => {
                let c = pl.lower_expr(cond)?;
                let then_entry = self.lower_block(pl, then_branch, next)?;
                let else_entry = self.lower_block(pl, else_branch, next)?;
                pl.push_internal(here, then_entry, c.clone(), Vec::new());
                pl.push_internal(here, else_entry, LExpr::Not(Box::new(c)), Vec::new());
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let c = pl.lower_expr(cond)?;
                let body_entry = self.lower_block(pl, body, here)?;
                pl.push_internal(here, body_entry, c.clone(), Vec::new());
                pl.push_internal(here, next, LExpr::Not(Box::new(c)), Vec::new());
                Ok(())
            }
            StmtKind::Assert(e) => {
                let c = pl.lower_expr(e)?;
                let err = self.current_error_pc.expect("error pc allocated when asserts exist");
                pl.push_internal(here, next, c.clone(), Vec::new());
                pl.push_internal(here, err, LExpr::Not(Box::new(c)), Vec::new());
                Ok(())
            }
            StmtKind::Assume(e) => {
                let c = pl.lower_expr(e)?;
                pl.push_internal(here, next, c, Vec::new());
                Ok(())
            }
            StmtKind::Goto(label) => {
                pl.gotos.push((here, label.clone()));
                Ok(())
            }
            StmtKind::Dead(vars) => {
                // Havoc: the dead variables take arbitrary values. This is
                // the `iterative`-vs-`schoose` modelling point from the
                // Terminator rows of Figure 2; here the CFG gets the direct
                // havoc edge, and the two modelings are produced by the
                // workload generator instead.
                let mut assigns = Vec::new();
                for v in vars {
                    assigns.push((pl.resolve(v)?, LExpr::Nondet));
                }
                pl.push_internal(here, next, LExpr::Const(true), assigns);
                Ok(())
            }
        }
    }

    fn lower_call(
        &mut self,
        pl: &mut ProcLowering<'_>,
        here: Pc,
        next: Pc,
        callee: &str,
        args: &[Expr],
        targets: &[String],
    ) -> Result<(), BuildError> {
        let Some(&callee_id) = self.proc_ids.get(callee) else {
            return Err(BuildError(format!("call to unknown procedure `{callee}`")));
        };
        let cp = &self.program.procs[callee_id];
        if cp.params.len() != args.len() {
            return Err(BuildError(format!(
                "`{callee}` takes {} parameters, called with {}",
                cp.params.len(),
                args.len()
            )));
        }
        if cp.returns != targets.len() {
            return Err(BuildError(format!(
                "`{callee}` returns {} values, {} targets given",
                cp.returns,
                targets.len()
            )));
        }
        let largs = args.iter().map(|e| pl.lower_expr(e)).collect::<Result<Vec<_>, _>>()?;
        let mut rets = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for t in targets {
            let tv = pl.resolve(t)?;
            if !seen.insert(tv) {
                return Err(BuildError(format!("`{t}` receives two return values")));
            }
            rets.push(tv);
        }
        pl.edges.entry(here).or_default().push(Edge::Call {
            callee: callee_id,
            args: largs,
            rets,
            ret_to: next,
        });
        Ok(())
    }
}

impl ProcLowering<'_> {
    fn resolve(&self, name: &str) -> Result<VarRef, BuildError> {
        if let Some(&i) = self.locals.get(name) {
            return Ok(VarRef::Local(i));
        }
        if let Some(&i) = self.globals.get(name) {
            return Ok(VarRef::Global(i));
        }
        Err(BuildError(format!("unknown variable `{name}` in `{}`", self.proc_name)))
    }

    fn lower_expr(&self, e: &Expr) -> Result<LExpr, BuildError> {
        Ok(match e {
            Expr::Const(b) => LExpr::Const(*b),
            Expr::Nondet => LExpr::Nondet,
            Expr::Var(v) => LExpr::Var(self.resolve(v)?),
            Expr::Not(a) => LExpr::Not(Box::new(self.lower_expr(a)?)),
            Expr::And(a, b) => {
                LExpr::And(Box::new(self.lower_expr(a)?), Box::new(self.lower_expr(b)?))
            }
            Expr::Or(a, b) => {
                LExpr::Or(Box::new(self.lower_expr(a)?), Box::new(self.lower_expr(b)?))
            }
            Expr::Eq(a, b) => {
                LExpr::Eq(Box::new(self.lower_expr(a)?), Box::new(self.lower_expr(b)?))
            }
            Expr::Ne(a, b) => {
                LExpr::Ne(Box::new(self.lower_expr(a)?), Box::new(self.lower_expr(b)?))
            }
            Expr::Schoose(a, b) => {
                LExpr::Schoose(Box::new(self.lower_expr(a)?), Box::new(self.lower_expr(b)?))
            }
        })
    }

    fn push_internal(&mut self, from: Pc, to: Pc, guard: LExpr, assigns: Vec<(VarRef, LExpr)>) {
        self.edges.entry(from).or_default().push(Edge::Internal { to, guard, assigns });
    }
}

fn contains_assert(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Assert(_) => true,
        StmtKind::If { then_branch, else_branch, .. } => {
            contains_assert(then_branch) || contains_assert(else_branch)
        }
        StmtKind::While { body, .. } => contains_assert(body),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn build(src: &str) -> Cfg {
        Cfg::build(&parse_program(src).unwrap()).unwrap()
    }

    fn build_err(src: &str) -> BuildError {
        Cfg::build(&parse_program(src).unwrap()).unwrap_err()
    }

    #[test]
    fn straight_line_lowering() {
        let cfg = build(
            r#"
            decl g;
            main() begin
              decl x;
              x := T;
              g := x;
            end
            "#,
        );
        let main = &cfg.procs[cfg.main];
        assert_eq!(main.params, 0);
        assert_eq!(main.locals, vec!["x"]);
        // entry -> assign -> assign -> exit
        let mut pc = main.entry;
        for _ in 0..2 {
            let edges = &main.edges[&pc];
            assert_eq!(edges.len(), 1);
            let Edge::Internal { to, assigns, .. } = &edges[0] else { panic!() };
            assert_eq!(assigns.len(), 1);
            pc = *to;
        }
        assert!(main.is_exit(pc));
    }

    #[test]
    fn if_creates_two_guarded_edges() {
        let cfg = build(
            r#"
            main() begin
              decl x;
              if (x) then
                skip;
              else
                x := F;
              fi;
            end
            "#,
        );
        let main = &cfg.procs[cfg.main];
        let edges = &main.edges[&main.entry];
        assert_eq!(edges.len(), 2);
        let guards: Vec<_> = edges
            .iter()
            .map(|e| match e {
                Edge::Internal { guard, .. } => guard.clone(),
                _ => panic!(),
            })
            .collect();
        assert!(guards.contains(&LExpr::Var(VarRef::Local(0))));
        assert!(guards.contains(&LExpr::Not(Box::new(LExpr::Var(VarRef::Local(0))))));
    }

    #[test]
    fn while_loops_back() {
        let cfg = build(
            r#"
            main() begin
              decl x;
              while (x) do
                x := *;
              od;
            end
            "#,
        );
        let main = &cfg.procs[cfg.main];
        let head = main.entry;
        let edges = &main.edges[&head];
        let body_entry = edges
            .iter()
            .find_map(|e| match e {
                Edge::Internal { to, guard, .. } if *guard == LExpr::Var(VarRef::Local(0)) => {
                    Some(*to)
                }
                _ => None,
            })
            .expect("loop-enter edge");
        // Body assign loops back to head.
        let body_edges = &main.edges[&body_entry];
        let Edge::Internal { to, .. } = &body_edges[0] else { panic!() };
        assert_eq!(*to, head);
    }

    #[test]
    fn call_edge_and_returns() {
        let cfg = build(
            r#"
            decl g;
            main() begin
              decl x, y;
              x, y := f(g, T);
            end
            f(a, b) returns 2 begin
              return a & b, a | b;
            end
            "#,
        );
        let main = &cfg.procs[cfg.main];
        let edges = &main.edges[&main.entry];
        let Edge::Call { callee, args, rets, .. } = &edges[0] else { panic!() };
        let f = &cfg.procs[*callee];
        assert_eq!(f.name, "f");
        assert_eq!(args.len(), 2);
        assert_eq!(rets, &vec![VarRef::Local(0), VarRef::Local(1)]);
        // f has an explicit return exit plus the implicit one.
        assert_eq!(f.exits.len(), 2);
        assert_eq!(f.exits[0].ret_exprs.len(), 2);
    }

    #[test]
    fn assert_targets_error_pc() {
        let cfg = build(
            r#"
            decl g;
            main() begin
              assert (g);
            end
            "#,
        );
        let main = &cfg.procs[cfg.main];
        let err = main.error_pc.expect("error pc");
        assert!(main.contains(err), "error sink inside the procedure's pc range");
        let edges = &main.edges[&main.entry];
        assert!(edges.iter().any(|e| matches!(e, Edge::Internal { to, .. } if *to == err)));
        assert_eq!(cfg.label("__assert_fail_main"), Some(err));
        assert_eq!(cfg.assert_sinks(), vec![err]);
    }

    #[test]
    fn goto_resolution() {
        let cfg = build(
            r#"
            main() begin
              decl x;
              goto L;
              x := F;
              L: x := T;
            end
            "#,
        );
        let main = &cfg.procs[cfg.main];
        let target = cfg.label("L").unwrap();
        let edges = &main.edges[&main.entry];
        let Edge::Internal { to, .. } = &edges[0] else { panic!() };
        assert_eq!(*to, target);
    }

    #[test]
    fn lines_flow_from_parser_and_at_line_into_the_cfg() {
        // Parsed statements carry positions into the pc → line map…
        let cfg = build(
            r#"decl g;
main() begin
  g := T;
  HIT: skip;
end"#,
        );
        let hit = cfg.label("HIT").unwrap();
        assert_eq!(cfg.line_of(hit), Some(4));
        assert_eq!(cfg.line_of(cfg.procs[cfg.main].entry), Some(3));
        // …and programmatically built ASTs can pin lines via `at_line`.
        use crate::ast::{Proc, Program};
        let program = Program {
            globals: vec![],
            procs: vec![Proc {
                name: "main".into(),
                params: vec![],
                returns: 0,
                locals: vec![],
                body: vec![crate::ast::Stmt::labeled("L", StmtKind::Skip).at_line(42)],
            }],
        };
        let cfg = Cfg::build(&program).unwrap();
        assert_eq!(cfg.line_of(cfg.label("L").unwrap()), Some(42));
    }

    #[test]
    fn dead_is_havoc() {
        let cfg = build(
            r#"
            main() begin
              decl x, y;
              dead x, y;
            end
            "#,
        );
        let main = &cfg.procs[cfg.main];
        let Edge::Internal { assigns, .. } = &main.edges[&main.entry][0] else { panic!() };
        assert_eq!(
            assigns,
            &vec![(VarRef::Local(0), LExpr::Nondet), (VarRef::Local(1), LExpr::Nondet)]
        );
    }

    #[test]
    fn errors_detected() {
        assert!(build_err("f() begin skip; end").0.contains("main"));
        assert!(build_err("main() begin call f(T); end f(a, b) begin skip; end")
            .0
            .contains("parameters"));
        assert!(build_err("main() begin decl x; x := g; end").0.contains("unknown variable"));
        assert!(build_err("decl g; main() begin decl g; skip; end").0.contains("shadows"));
        assert!(build_err("main() begin return T; end").0.contains("returns 0"));
        assert!(build_err("main() begin goto X; end").0.contains("unknown label"));
        assert!(build_err("main() begin call main(); end").0.contains("must not be called"));
        // The parser now rejects duplicate labels up front; the builder
        // keeps its own check for programmatically built ASTs.
        use crate::ast::Proc;
        let program = Program {
            globals: vec![],
            procs: vec![Proc {
                name: "main".into(),
                params: vec![],
                returns: 0,
                locals: vec![],
                body: vec![
                    crate::ast::Stmt::labeled("L", StmtKind::Skip),
                    crate::ast::Stmt::labeled("L", StmtKind::Skip),
                ],
            }],
        };
        assert!(Cfg::build(&program).unwrap_err().0.contains("twice"));
        assert!(build_err("main() begin decl x; x, x := T, F; end").0.contains("twice"));
    }

    #[test]
    fn value_set_semantics() {
        // schoose[pos, neg]
        let read_false = |_: VarRef| false;
        let sc = LExpr::Schoose(Box::new(LExpr::Const(true)), Box::new(LExpr::Const(false)));
        assert_eq!(sc.value_set(&read_false), (true, false));
        let sc = LExpr::Schoose(Box::new(LExpr::Const(false)), Box::new(LExpr::Const(true)));
        assert_eq!(sc.value_set(&read_false), (false, true));
        let sc = LExpr::Schoose(Box::new(LExpr::Const(false)), Box::new(LExpr::Const(false)));
        assert_eq!(sc.value_set(&read_false), (true, true));
        // nondet propagates
        let e = LExpr::And(Box::new(LExpr::Nondet), Box::new(LExpr::Const(true)));
        assert_eq!(e.value_set(&read_false), (true, true));
        let e = LExpr::Eq(Box::new(LExpr::Nondet), Box::new(LExpr::Nondet));
        assert_eq!(e.value_set(&read_false), (true, true));
    }

    #[test]
    fn pc_ranges_are_disjoint_and_dense() {
        let cfg = build(
            r#"
            main() begin
              call f();
            end
            f() begin
              skip;
            end
            "#,
        );
        let mut covered = vec![false; cfg.pc_count as usize];
        for p in &cfg.procs {
            for pc in p.pc_range.0..p.pc_range.1 {
                assert!(!covered[pc as usize], "pc {pc} covered twice");
                covered[pc as usize] = true;
            }
        }
        assert!(covered.iter().all(|&b| b), "all pcs covered");
    }
}
