//! Intraprocedural forward constant propagation.
//!
//! Three-valued (true / false / unknown) abstract interpretation over one
//! procedure's CFG: a worklist fixpoint from the entry pc, joining
//! pointwise at merge points, skipping edges whose guard is statically
//! false. After the fixpoint, a pc the iteration never reached is
//! *statically unreachable* and an edge whose guard cannot be true in the
//! final entry state is *infeasible* — both are exact consequences of the
//! pinned initialization semantics (globals start false at program start,
//! non-parameter locals start false at procedure entry, see the `cfg`
//! module docs), not heuristics.
//!
//! Guard refinement: along an edge guarded by a literal (or a conjunction
//! of literals when taken, a disjunction when refuted) the target state
//! learns the literal's value — enough to see through the
//! `if (c) then … else … fi` lowering pattern without a full relational
//! domain.

use super::callgraph::CallGraph;
use crate::cfg::{Cfg, Edge, LExpr, Pc, ProcCfg, VarRef};
use std::collections::VecDeque;

/// One variable's abstract value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Abs {
    True,
    False,
    Top,
}

impl Abs {
    /// `(can_be_true, can_be_false)`.
    fn value_set(self) -> (bool, bool) {
        match self {
            Abs::True => (true, false),
            Abs::False => (false, true),
            Abs::Top => (true, true),
        }
    }

    fn from_value_set(can_true: bool, can_false: bool) -> Abs {
        match (can_true, can_false) {
            (true, false) => Abs::True,
            (false, true) => Abs::False,
            // `(false, false)` cannot arise from a consistent state; treat
            // it as unknown rather than propagate a contradiction.
            _ => Abs::Top,
        }
    }

    fn join(self, other: Abs) -> Abs {
        if self == other {
            self
        } else {
            Abs::Top
        }
    }
}

/// The abstract state at one pc.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Env {
    globals: Vec<Abs>,
    locals: Vec<Abs>,
}

impl Env {
    fn read(&self, v: VarRef) -> Abs {
        match v {
            VarRef::Global(g) => self.globals[g],
            VarRef::Local(l) => self.locals[l],
        }
    }

    fn write(&mut self, v: VarRef, a: Abs) {
        match v {
            VarRef::Global(g) => self.globals[g] = a,
            VarRef::Local(l) => self.locals[l] = a,
        }
    }

    fn havoc_globals(&mut self) {
        for g in &mut self.globals {
            *g = Abs::Top;
        }
    }

    /// Pointwise join; returns whether `self` changed.
    fn join_from(&mut self, other: &Env) -> bool {
        let mut changed = false;
        for (a, b) in self.globals.iter_mut().zip(&other.globals) {
            let j = a.join(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        for (a, b) in self.locals.iter_mut().zip(&other.locals) {
            let j = a.join(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        changed
    }
}

/// Three-valued expression evaluation: `(can_be_true, can_be_false)`.
/// Mirrors [`LExpr::value_set`] with an abstract read.
fn eval(e: &LExpr, env: &Env) -> (bool, bool) {
    match e {
        LExpr::Const(b) => (*b, !*b),
        LExpr::Nondet => (true, true),
        LExpr::Var(v) => env.read(*v).value_set(),
        LExpr::Not(a) => {
            let (t, f) = eval(a, env);
            (f, t)
        }
        LExpr::And(a, b) => {
            let (at, af) = eval(a, env);
            let (bt, bf) = eval(b, env);
            (at && bt, af || bf)
        }
        LExpr::Or(a, b) => {
            let (at, af) = eval(a, env);
            let (bt, bf) = eval(b, env);
            (at || bt, af && bf)
        }
        LExpr::Eq(a, b) => {
            let (at, af) = eval(a, env);
            let (bt, bf) = eval(b, env);
            (at && bt || af && bf, at && bf || af && bt)
        }
        LExpr::Ne(a, b) => {
            let (at, af) = eval(a, env);
            let (bt, bf) = eval(b, env);
            (at && bf || af && bt, at && bt || af && bf)
        }
        LExpr::Schoose(pos, neg) => {
            let (pt, pf) = eval(pos, env);
            let (nt, nf) = eval(neg, env);
            (pt || (pf && nf), pf && (nt || nf))
        }
    }
}

/// Learns literal facts from assuming `e` evaluates to `want`.
fn refine(env: &mut Env, e: &LExpr, want: bool) {
    match e {
        LExpr::Var(v) => env.write(*v, if want { Abs::True } else { Abs::False }),
        LExpr::Not(a) => refine(env, a, !want),
        LExpr::And(a, b) if want => {
            refine(env, a, true);
            refine(env, b, true);
        }
        LExpr::Or(a, b) if !want => {
            refine(env, a, false);
            refine(env, b, false);
        }
        _ => {}
    }
}

/// The per-procedure result.
#[derive(Debug)]
pub struct ProcFacts {
    /// Pcs reachable from the entry through feasible edges, ascending.
    pub reachable: Vec<Pc>,
    /// `(pc, edge index)` of edges whose guard is statically false at a
    /// reachable source pc.
    pub infeasible: Vec<(Pc, usize)>,
}

/// Runs the fixpoint on one procedure.
pub fn run(cfg: &Cfg, proc: &ProcCfg, callgraph: &CallGraph, concurrent: bool) -> ProcFacts {
    let (lo, hi) = proc.pc_range;
    let idx = |pc: Pc| (pc - lo) as usize;
    let mut states: Vec<Option<Env>> = vec![None; (hi - lo) as usize];

    // Entry state, per the pinned initialization semantics: `main` starts
    // the program (globals false), every other procedure is entered by a
    // call (parameters unknown, globals whatever the caller had);
    // non-parameter locals are always false at entry. Under concurrency
    // any interleaving may rewrite globals between two steps, so globals
    // are unknown everywhere.
    let globals_known = !concurrent && proc.id == cfg.main;
    let mut entry = Env {
        globals: vec![if globals_known { Abs::False } else { Abs::Top }; cfg.globals.len()],
        locals: vec![Abs::False; proc.n_locals()],
    };
    for p in 0..proc.params {
        entry.locals[p] = Abs::Top;
    }
    states[idx(proc.entry)] = Some(entry);

    let mut queue: VecDeque<Pc> = VecDeque::new();
    let mut queued = vec![false; (hi - lo) as usize];
    queue.push_back(proc.entry);
    queued[idx(proc.entry)] = true;

    while let Some(pc) = queue.pop_front() {
        queued[idx(pc)] = false;
        let env = states[idx(pc)].clone().expect("queued pc has a state");
        let Some(edges) = proc.edges.get(&pc) else { continue };
        for edge in edges {
            let (to, out) = match edge {
                Edge::Internal { to, guard, assigns } => {
                    let (can_true, _) = eval(guard, &env);
                    if !can_true {
                        continue;
                    }
                    let mut pre = env.clone();
                    refine(&mut pre, guard, true);
                    // Parallel assignment: all right-hand sides evaluate
                    // in the pre-state.
                    let vals: Vec<(VarRef, Abs)> = assigns
                        .iter()
                        .map(|(v, e)| {
                            let (t, f) = eval(e, &pre);
                            (*v, Abs::from_value_set(t, f))
                        })
                        .collect();
                    let mut out = pre;
                    for (v, a) in vals {
                        out.write(v, a);
                    }
                    (*to, out)
                }
                Edge::Call { callee, rets, ret_to, .. } => {
                    let mut out = env.clone();
                    for r in rets {
                        out.write(*r, Abs::Top);
                    }
                    for &g in &callgraph.mod_globals[*callee] {
                        out.globals[g] = Abs::Top;
                    }
                    (*ret_to, out)
                }
            };
            let mut out = out;
            if concurrent {
                out.havoc_globals();
            }
            let changed = match &mut states[idx(to)] {
                Some(existing) => existing.join_from(&out),
                slot @ None => {
                    *slot = Some(out);
                    true
                }
            };
            if changed && !queued[idx(to)] {
                queued[idx(to)] = true;
                queue.push_back(to);
            }
        }
    }

    // Final facts: reachability is "has a state"; infeasibility is judged
    // against the *final* (weakest) state, so it is a fixpoint property,
    // not an iteration artifact.
    let mut reachable = Vec::new();
    let mut infeasible = Vec::new();
    for pc in lo..hi {
        let Some(env) = &states[idx(pc)] else { continue };
        reachable.push(pc);
        if let Some(edges) = proc.edges.get(&pc) {
            for (i, edge) in edges.iter().enumerate() {
                if let Edge::Internal { guard, .. } = edge {
                    let (can_true, _) = eval(guard, env);
                    if !can_true {
                        infeasible.push((pc, i));
                    }
                }
            }
        }
    }
    ProcFacts { reachable, infeasible }
}
