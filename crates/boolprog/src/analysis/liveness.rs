//! Backward faint-variable analysis, interprocedural through call/return
//! bindings.
//!
//! A variable is **live** when its value can transitively reach a guard on
//! some kept (reachable, feasible) edge — the branches that gate reaching
//! any reachability target. Everything else is *faint*: deleting it (and
//! every assignment to it) cannot change which pcs are reachable, because
//! no transition's feasibility ever reads it. This is deletion-oriented
//! liveness — a whole-variable property, not the classic per-pc kind — so
//! the fixpoint runs over one global mark set:
//!
//! * every variable read by a kept edge's guard is live;
//! * if an assignment target is live, the right-hand side's reads are live;
//! * a callee parameter is live exactly when its local slot is live, and
//!   then every call site's corresponding argument reads are live;
//! * a return slot is live when *some* kept call site binds it to a live
//!   receiver — and then every call site's receiver for that slot is
//!   marked live too (the slot survives slicing, so each binding needs a
//!   representable target), as are the slot's return-expression reads at
//!   every kept exit.

use crate::cfg::{Cfg, Edge, Pc, VarRef};
use std::collections::BTreeSet;

/// The fixpoint result.
#[derive(Debug)]
pub struct Liveness {
    pub globals: Vec<bool>,
    pub locals: Vec<Vec<bool>>,
    pub ret_slots: Vec<Vec<bool>>,
}

/// Runs the fixpoint over the kept fragment of the CFG.
pub fn run(
    cfg: &Cfg,
    live_procs: &[bool],
    reachable_pcs: &[bool],
    infeasible_edges: &[(Pc, usize)],
) -> Liveness {
    let infeasible: BTreeSet<(Pc, usize)> = infeasible_edges.iter().copied().collect();
    let mut live = Liveness {
        globals: vec![false; cfg.globals.len()],
        locals: cfg.procs.iter().map(|p| vec![false; p.n_locals()]).collect(),
        ret_slots: cfg.procs.iter().map(|p| vec![false; p.returns]).collect(),
    };

    loop {
        let mut changed = false;
        for proc in &cfg.procs {
            if !live_procs[proc.id] {
                continue;
            }
            for (pc, edges) in &proc.edges {
                if !reachable_pcs[*pc as usize] {
                    continue;
                }
                for (idx, edge) in edges.iter().enumerate() {
                    if infeasible.contains(&(*pc, idx)) {
                        continue;
                    }
                    match edge {
                        Edge::Internal { guard, assigns, .. } => {
                            for v in guard.vars() {
                                changed |= live.mark(proc.id, v);
                            }
                            for (target, e) in assigns {
                                if live.is_live(proc.id, *target) {
                                    for v in e.vars() {
                                        changed |= live.mark(proc.id, v);
                                    }
                                }
                            }
                        }
                        Edge::Call { callee, args, rets, .. } => {
                            for (i, arg) in args.iter().enumerate() {
                                if live.locals[*callee][i] {
                                    for v in arg.vars() {
                                        changed |= live.mark(proc.id, v);
                                    }
                                }
                            }
                            for (j, r) in rets.iter().enumerate() {
                                if live.is_live(proc.id, *r) && !live.ret_slots[*callee][j] {
                                    live.ret_slots[*callee][j] = true;
                                    changed = true;
                                }
                                if live.ret_slots[*callee][j] {
                                    changed |= live.mark(proc.id, *r);
                                }
                            }
                        }
                    }
                }
            }
            for exit in &proc.exits {
                if !reachable_pcs[exit.pc as usize] {
                    continue;
                }
                for (j, e) in exit.ret_exprs.iter().enumerate() {
                    if live.ret_slots[proc.id][j] {
                        for v in e.vars() {
                            changed |= live.mark(proc.id, v);
                        }
                    }
                }
            }
        }
        if !changed {
            return live;
        }
    }
}

impl Liveness {
    fn is_live(&self, proc: usize, v: VarRef) -> bool {
        match v {
            VarRef::Global(g) => self.globals[g],
            VarRef::Local(l) => self.locals[proc][l],
        }
    }

    /// Marks a variable live; returns whether that was news.
    fn mark(&mut self, proc: usize, v: VarRef) -> bool {
        let slot = match v {
            VarRef::Global(g) => &mut self.globals[g],
            VarRef::Local(l) => &mut self.locals[proc][l],
        };
        if *slot {
            false
        } else {
            *slot = true;
            true
        }
    }
}
