//! Findings: the analysis facts rendered as deterministic, structured
//! diagnostics for the `getafix lint` verb.
//!
//! Ordering is part of the contract (golden tests pin it): dead
//! procedures by id, dead globals by index, then per live procedure (by
//! id) dead locals by slot, unreachable statements by pc, and infeasible
//! branches by `(pc, edge index)`.

use super::{analyze, Analysis, AnalysisOptions};
use crate::cfg::{Cfg, Edge, Pc};
use std::fmt;

/// How serious a finding is. `--deny` fails the run on any
/// [`Severity::Warning`]; [`Severity::Info`] findings (e.g. an assert
/// that can never fail — working code) never fail a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Info => write!(f, "info"),
        }
    }
}

/// The class of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// No call path from the entry roots reaches the procedure.
    DeadProc,
    /// The global is never read; deleting it is safe.
    DeadGlobal,
    /// The local (or parameter) is never read; deleting it is safe.
    DeadLocal,
    /// No feasible edge path from the procedure's entry reaches the
    /// statement.
    UnreachableCode,
    /// The edge's guard is statically false.
    InfeasibleBranch,
    /// The assert's condition is statically true.
    AssertNeverFails,
    /// The assert's condition is statically false.
    AssertAlwaysFails,
    /// The analysis abstained (control flow crosses a procedure
    /// boundary); no pruning facts were computed.
    Abstained,
}

impl FindingKind {
    /// Stable machine-readable class name.
    pub fn slug(self) -> &'static str {
        match self {
            FindingKind::DeadProc => "dead-proc",
            FindingKind::DeadGlobal => "dead-global",
            FindingKind::DeadLocal => "dead-local",
            FindingKind::UnreachableCode => "unreachable-code",
            FindingKind::InfeasibleBranch => "infeasible-branch",
            FindingKind::AssertNeverFails => "assert-never-fails",
            FindingKind::AssertAlwaysFails => "assert-always-fails",
            FindingKind::Abstained => "abstained",
        }
    }

    fn severity(self) -> Severity {
        match self {
            FindingKind::AssertNeverFails | FindingKind::Abstained => Severity::Info,
            _ => Severity::Warning,
        }
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub kind: FindingKind,
    pub severity: Severity,
    /// Owning procedure, empty for program-level findings (dead globals,
    /// abstention).
    pub proc_name: String,
    /// The pc the finding anchors to, if any (original numbering).
    pub pc: Option<Pc>,
    /// 1-based source line, when the pc carried one.
    pub line: Option<u32>,
    pub message: String,
}

impl Finding {
    fn new(
        kind: FindingKind,
        proc_name: &str,
        pc: Option<Pc>,
        line: Option<u32>,
        message: String,
    ) -> Finding {
        Finding {
            kind,
            severity: kind.severity(),
            proc_name: proc_name.to_string(),
            pc,
            line,
            message,
        }
    }
}

/// Runs the analysis and renders findings.
pub fn lint(cfg: &Cfg, opts: &AnalysisOptions) -> Vec<Finding> {
    lint_with(cfg, &analyze(cfg, opts))
}

/// Renders findings from precomputed analysis facts.
pub fn lint_with(cfg: &Cfg, analysis: &Analysis) -> Vec<Finding> {
    let mut findings = Vec::new();
    if analysis.abstained {
        findings.push(Finding::new(
            FindingKind::Abstained,
            "",
            None,
            None,
            "control flow crosses a procedure boundary; no pruning facts computed".into(),
        ));
        return findings;
    }

    for proc in &cfg.procs {
        if !analysis.live_procs[proc.id] {
            findings.push(Finding::new(
                FindingKind::DeadProc,
                &proc.name,
                Some(proc.entry),
                cfg.line_of(proc.entry),
                format!("procedure `{}` is never called", proc.name),
            ));
        }
    }

    for (g, name) in cfg.globals.iter().enumerate() {
        if !analysis.live_globals[g] {
            findings.push(Finding::new(
                FindingKind::DeadGlobal,
                "",
                None,
                None,
                format!("global `{name}` is never read"),
            ));
        }
    }

    for proc in &cfg.procs {
        if !analysis.live_procs[proc.id] {
            continue;
        }
        for (i, name) in proc.locals.iter().enumerate() {
            if !analysis.live_locals[proc.id][i] {
                let what = if i < proc.params { "parameter" } else { "local" };
                findings.push(Finding::new(
                    FindingKind::DeadLocal,
                    &proc.name,
                    None,
                    None,
                    format!("{what} `{name}` of `{}` is never read", proc.name),
                ));
            }
        }

        // Synthetic pcs (the implicit exit, the assert sink) carry no
        // source position; report only pcs the programmer can see.
        for pc in proc.pc_range.0..proc.pc_range.1 {
            if analysis.reachable_pcs[pc as usize] {
                continue;
            }
            let line = cfg.line_of(pc);
            let label = cfg.labels.iter().find(|(name, &p)| p == pc && !name.starts_with("__"));
            if line.is_none() && label.is_none() {
                continue;
            }
            let at = match (label, line) {
                (Some((name, _)), Some(l)) => format!("`{name}:` (line {l})"),
                (Some((name, _)), None) => format!("`{name}:`"),
                (None, Some(l)) => format!("line {l}"),
                (None, None) => unreachable!(),
            };
            findings.push(Finding::new(
                FindingKind::UnreachableCode,
                &proc.name,
                Some(pc),
                line,
                format!("statement at {at} in `{}` is unreachable", proc.name),
            ));
        }

        let mut infeasible: Vec<(Pc, usize)> = analysis
            .infeasible_edges
            .iter()
            .filter(|(pc, _)| proc.contains(*pc))
            .copied()
            .collect();
        infeasible.sort_unstable();
        for (pc, idx) in infeasible {
            let edge = &proc.edges[&pc][idx];
            let line = cfg.line_of(pc);
            let at = line.map_or_else(String::new, |l| format!(" at line {l}"));
            let is_assert_site = proc.error_pc.is_some_and(|err| {
                proc.edges[&pc].iter().any(|e| matches!(e, Edge::Internal { to, .. } if *to == err))
            });
            let (kind, message) = match edge {
                Edge::Internal { to, .. } if proc.error_pc == Some(*to) && is_assert_site => (
                    FindingKind::AssertNeverFails,
                    format!("assert{at} in `{}` can never fail", proc.name),
                ),
                _ if is_assert_site => (
                    FindingKind::AssertAlwaysFails,
                    format!("assert{at} in `{}` always fails", proc.name),
                ),
                _ => (
                    FindingKind::InfeasibleBranch,
                    format!(
                        "branch{at} in `{}` is statically infeasible (guard is always false)",
                        proc.name
                    ),
                ),
            };
            findings.push(Finding::new(kind, &proc.name, Some(pc), line, message));
        }
    }
    findings
}
