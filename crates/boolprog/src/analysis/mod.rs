//! Pre-solve static analysis over the lowered [`Cfg`].
//!
//! The fixed-point engines encode the *whole* program into the BDD-backed
//! relation system; real inputs (SLAM/Terminator-style device-driver
//! abstractions) carry dead procedures, statically-unreachable branches,
//! constant guards, and never-read variables that inflate relation and BDD
//! variable counts before the solver ever runs. This module is the
//! demand-aware pre-pass that removes them:
//!
//! * [`CallGraph`] — call-graph construction with dead-procedure detection
//!   from the entry roots, plus transitive global modification sets;
//! * constant propagation ([`analyze`]) — intraprocedural forward
//!   three-valued propagation over [`crate::LExpr`] guards, marking
//!   infeasible edges and statically-unreachable pcs;
//! * liveness ([`analyze`]) — backward *faint-variable* analysis (globals
//!   and per-procedure locals), propagated interprocedurally through
//!   call/return bindings: a variable is live only if it transitively
//!   feeds a guard on some feasible edge (the branches that gate reaching
//!   any query target) — everything else can be deleted outright;
//! * [`slice()`] — a verdict-preserving rewrite dropping dead procedures,
//!   pruning infeasible edges and deleting dead variables, so the BDD
//!   encoding allocates strictly fewer variables, while preserving the
//!   pc→line and label maps so `--trace` witnesses still print real
//!   source locations;
//! * [`lint`] — the same facts surfaced as deterministic findings for the
//!   `getafix lint` verb.
//!
//! # Soundness contract
//!
//! Slicing preserves reachability verdicts for every target that survives
//! the slice, and a pruned target is *provably unreachable* (it sat in a
//! procedure no call path from the roots reaches, or at a pc no feasible
//! edge path from its procedure's entry reaches). Variable deletion is
//! restricted to faint variables — never read by any kept guard,
//! assignment that feeds a kept read, call argument bound to a live
//! parameter, or return expression bound to a live return slot — so the
//! reachable pc set is untouched. For merged concurrent CFGs
//! ([`AnalysisOptions::concurrent`]) globals are havocked at every step
//! (any interleaving may rewrite shared state between two statements of
//! one thread), which disables global-based edge pruning but keeps
//! procedure- and local-level facts exact.

mod callgraph;
mod constprop;
mod lint;
mod liveness;
mod slice;

pub use callgraph::CallGraph;
pub use lint::{lint, lint_with, Finding, FindingKind, Severity};
pub use slice::{slice, Slice, SliceStats};

use crate::cfg::{Cfg, Edge, Pc, ProcId};

/// Configuration for [`analyze`], [`slice()`] and [`lint`].
#[derive(Debug, Clone, Default)]
pub struct AnalysisOptions {
    /// Entry procedures. `main` is always implicitly a root; merged
    /// concurrent programs add every thread's entry procedure.
    pub roots: Vec<ProcId>,
    /// Query target pcs (reachability labels / assert sinks). Targets do
    /// not change the computed facts — liveness is seeded from the guards
    /// gating *any* control flow — but [`slice()`] records which of them
    /// survive, and a pruned target is provably unreachable.
    pub targets: Vec<Pc>,
    /// The CFG is a merged concurrent program: globals are shared across
    /// threads and must be treated as unknown at every step.
    pub concurrent: bool,
}

impl AnalysisOptions {
    /// Options for a sequential program: root `main`, no targets.
    pub fn sequential() -> AnalysisOptions {
        AnalysisOptions::default()
    }

    /// Options for a merged concurrent program whose threads enter at
    /// `entries` (pcs, as in `Merged::thread_entries`).
    pub fn concurrent_with_entries(cfg: &Cfg, entries: &[Pc]) -> AnalysisOptions {
        AnalysisOptions {
            roots: entries.iter().map(|&pc| cfg.proc_of(pc).id).collect(),
            targets: Vec::new(),
            concurrent: true,
        }
    }

    /// Adds query targets.
    #[must_use]
    pub fn with_targets(mut self, targets: &[Pc]) -> AnalysisOptions {
        self.targets = targets.to_vec();
        self
    }
}

/// The combined result of the three analyses. Indexing: `live_procs` by
/// [`ProcId`], `reachable_pcs` by pc, `live_locals[p][i]` by procedure and
/// local slot, `live_ret_slots[p][j]` by procedure and return slot.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The call graph, with reachability from the roots.
    pub callgraph: CallGraph,
    /// Procedure is reachable through some feasible call path from a root.
    pub live_procs: Vec<bool>,
    /// Pc is reachable from its procedure's entry through feasible edges
    /// (always `false` for pcs of dead procedures).
    pub reachable_pcs: Vec<bool>,
    /// `(pc, edge index)` pairs whose guard is statically false at a
    /// reachable source pc.
    pub infeasible_edges: Vec<(Pc, usize)>,
    /// Global is read somewhere that matters (not faint).
    pub live_globals: Vec<bool>,
    /// Local slot is read somewhere that matters (not faint).
    pub live_locals: Vec<Vec<bool>>,
    /// Return slot is bound to a live receiver at some kept call site.
    pub live_ret_slots: Vec<Vec<bool>>,
    /// The analysis refused to prune (the CFG has an edge that crosses a
    /// procedure boundary — structurally possible via `goto`, outside the
    /// fragment the dataflow equations model). All facts are then the
    /// conservative "everything live / reachable / feasible".
    pub abstained: bool,
}

impl Analysis {
    /// The fully conservative result: nothing prunable.
    fn conservative(cfg: &Cfg, callgraph: CallGraph, abstained: bool) -> Analysis {
        Analysis {
            callgraph,
            live_procs: vec![true; cfg.procs.len()],
            reachable_pcs: vec![true; cfg.pc_count as usize],
            infeasible_edges: Vec::new(),
            live_globals: vec![true; cfg.globals.len()],
            live_locals: cfg.procs.iter().map(|p| vec![true; p.n_locals()]).collect(),
            live_ret_slots: cfg.procs.iter().map(|p| vec![true; p.returns]).collect(),
            abstained,
        }
    }

    /// The effective roots: the requested roots plus `main`.
    fn roots(cfg: &Cfg, opts: &AnalysisOptions) -> Vec<ProcId> {
        let mut roots = vec![cfg.main];
        for &r in &opts.roots {
            if !roots.contains(&r) {
                roots.push(r);
            }
        }
        roots
    }
}

/// Runs call-graph, constant-propagation and liveness analysis.
pub fn analyze(cfg: &Cfg, opts: &AnalysisOptions) -> Analysis {
    let roots = Analysis::roots(cfg, opts);
    let callgraph = CallGraph::build(cfg, &roots);

    // The dataflow equations assume intraprocedural `Internal` edges. A
    // `goto` to a label in another procedure is structurally expressible;
    // abstain rather than mis-model it.
    for proc in &cfg.procs {
        for edges in proc.edges.values() {
            for edge in edges {
                let crosses = match edge {
                    Edge::Internal { to, .. } => !proc.contains(*to),
                    Edge::Call { ret_to, .. } => !proc.contains(*ret_to),
                };
                if crosses {
                    return Analysis::conservative(cfg, callgraph, true);
                }
            }
        }
    }

    // Forward constant propagation per syntactically-reachable procedure.
    let mut reachable_pcs = vec![false; cfg.pc_count as usize];
    let mut infeasible_edges = Vec::new();
    for proc in &cfg.procs {
        if !callgraph.reachable[proc.id] {
            continue;
        }
        let facts = constprop::run(cfg, proc, &callgraph, opts.concurrent);
        for pc in facts.reachable {
            reachable_pcs[pc as usize] = true;
        }
        infeasible_edges.extend(facts.infeasible);
    }

    // Re-run procedure reachability over *feasible* call sites only: a
    // call at a statically-unreachable pc keeps nobody alive. A single
    // BFS handles cascades.
    let live_procs = callgraph.refine_reachable(cfg, &roots, &reachable_pcs);
    for proc in &cfg.procs {
        if !live_procs[proc.id] {
            for pc in proc.pc_range.0..proc.pc_range.1 {
                reachable_pcs[pc as usize] = false;
            }
        }
    }
    infeasible_edges.retain(|&(pc, _)| reachable_pcs[pc as usize]);

    let live = liveness::run(cfg, &live_procs, &reachable_pcs, &infeasible_edges);

    Analysis {
        callgraph,
        live_procs,
        reachable_pcs,
        infeasible_edges,
        live_globals: live.globals,
        live_locals: live.locals,
        live_ret_slots: live.ret_slots,
        abstained: false,
    }
}

#[cfg(test)]
mod tests;
