//! Call-graph construction, reachability from the entry roots, and
//! transitive global modification sets (used by constant propagation to
//! havoc exactly the globals a call can touch).

use crate::cfg::{Cfg, Edge, Pc, ProcId, VarRef};
use std::collections::BTreeSet;

/// The program's call graph.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Syntactic callees per procedure.
    pub callees: Vec<BTreeSet<ProcId>>,
    /// Procedure is reachable from the roots through syntactic call edges.
    pub reachable: Vec<bool>,
    /// Globals a call to the procedure may modify, transitively (direct
    /// assignments, return-value bindings into globals at its call sites
    /// are charged to the *caller*, plus everything its callees modify).
    pub mod_globals: Vec<BTreeSet<usize>>,
}

impl CallGraph {
    /// Builds the call graph and computes reachability from `roots`.
    pub fn build(cfg: &Cfg, roots: &[ProcId]) -> CallGraph {
        let n = cfg.procs.len();
        let mut callees = vec![BTreeSet::new(); n];
        let mut mod_globals = vec![BTreeSet::new(); n];
        for proc in &cfg.procs {
            for edges in proc.edges.values() {
                for edge in edges {
                    match edge {
                        Edge::Internal { assigns, .. } => {
                            for (target, _) in assigns {
                                if let VarRef::Global(g) = target {
                                    mod_globals[proc.id].insert(*g);
                                }
                            }
                        }
                        Edge::Call { callee, rets, .. } => {
                            callees[proc.id].insert(*callee);
                            for target in rets {
                                if let VarRef::Global(g) = target {
                                    mod_globals[proc.id].insert(*g);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Transitive closure of the modification sets over call edges.
        let mut changed = true;
        while changed {
            changed = false;
            for id in 0..n {
                for callee in callees[id].clone() {
                    let extra: Vec<usize> = mod_globals[callee]
                        .iter()
                        .filter(|g| !mod_globals[id].contains(*g))
                        .copied()
                        .collect();
                    if !extra.is_empty() {
                        mod_globals[id].extend(extra);
                        changed = true;
                    }
                }
            }
        }

        let reachable = bfs(&callees, n, roots);
        CallGraph { callees, reachable, mod_globals }
    }

    /// Re-runs reachability counting only call edges whose source pc is in
    /// `reachable_pcs` — a call inside a statically-unreachable branch
    /// keeps nobody alive.
    pub fn refine_reachable(
        &self,
        cfg: &Cfg,
        roots: &[ProcId],
        reachable_pcs: &[bool],
    ) -> Vec<bool> {
        let n = cfg.procs.len();
        let mut callees = vec![BTreeSet::new(); n];
        for proc in &cfg.procs {
            for (pc, edges) in &proc.edges {
                if !reachable_pcs[*pc as usize] {
                    continue;
                }
                for edge in edges {
                    if let Edge::Call { callee, .. } = edge {
                        callees[proc.id].insert(*callee);
                    }
                }
            }
        }
        bfs(&callees, n, roots)
    }

    /// Call sites of `callee`: `(caller, pc, edge index)` triples, in
    /// deterministic order.
    pub fn call_sites(&self, cfg: &Cfg, callee: ProcId) -> Vec<(ProcId, Pc, usize)> {
        let mut sites = Vec::new();
        for proc in &cfg.procs {
            for (pc, edges) in &proc.edges {
                for (idx, edge) in edges.iter().enumerate() {
                    if matches!(edge, Edge::Call { callee: c, .. } if *c == callee) {
                        sites.push((proc.id, *pc, idx));
                    }
                }
            }
        }
        sites
    }
}

fn bfs(callees: &[BTreeSet<ProcId>], n: usize, roots: &[ProcId]) -> Vec<bool> {
    let mut reachable = vec![false; n];
    let mut queue: Vec<ProcId> = Vec::new();
    for &r in roots {
        if r < n && !reachable[r] {
            reachable[r] = true;
            queue.push(r);
        }
    }
    while let Some(p) = queue.pop() {
        for &c in &callees[p] {
            if !reachable[c] {
                reachable[c] = true;
                queue.push(c);
            }
        }
    }
    reachable
}
