//! Unit tests for the analysis passes and the slicer, including the
//! explicit-oracle differential: slicing never changes a verdict.

use super::*;
use crate::interp::explicit_reachable;
use crate::parse::parse_program;

fn build(src: &str) -> Cfg {
    Cfg::build(&parse_program(src).expect("parse")).expect("lower")
}

fn seq_slice(src: &str) -> Slice {
    slice(&build(src), &AnalysisOptions::sequential())
}

/// Verdict differential against the explicit oracle for every label.
fn assert_slice_preserves_verdicts(src: &str) {
    let cfg = build(src);
    let sliced = slice(&cfg, &AnalysisOptions::sequential());
    for (label, &pc) in &cfg.labels {
        let before = explicit_reachable(&cfg, &[pc], 5_000_000).expect("oracle").reachable;
        let after = match sliced.map_pc(pc) {
            Some(new) => {
                explicit_reachable(&sliced.cfg, &[new], 5_000_000).expect("oracle").reachable
            }
            None => false,
        };
        assert_eq!(before, after, "verdict changed for `{label}`:\n{src}");
    }
}

#[test]
fn dead_procedure_is_detected_and_dropped() {
    let s = seq_slice(
        r#"
        main() begin
          skip;
        end
        helper() begin
          skip;
        end
        "#,
    );
    assert!(!s.analysis.live_procs[1]);
    assert_eq!(s.cfg.procs.len(), 1);
    assert_eq!(s.stats.procs_before, 2);
    assert_eq!(s.stats.procs_after, 1);
    assert!(s.stats.reduced());
}

#[test]
fn transitively_dead_procedures_are_dropped() {
    let s = seq_slice(
        r#"
        main() begin
          skip;
        end
        a() begin
          call b();
        end
        b() begin
          skip;
        end
        "#,
    );
    assert_eq!(s.cfg.procs.len(), 1);
}

#[test]
fn called_procedures_stay() {
    let s = seq_slice(
        r#"
        main() begin
          call a();
        end
        a() begin
          call b();
        end
        b() begin
          skip;
        end
        "#,
    );
    assert_eq!(s.cfg.procs.len(), 3);
}

#[test]
fn constant_guard_prunes_the_dead_branch() {
    let cfg = build(
        r#"
        decl g;
        main() begin
          g := F;
          if (g) then
            DEAD: skip;
          else
            LIVE: skip;
          fi;
        end
        "#,
    );
    let s = slice(&cfg, &AnalysisOptions::sequential());
    assert!(s.map_pc(cfg.label("DEAD").unwrap()).is_none(), "dead branch pruned");
    assert!(s.map_pc(cfg.label("LIVE").unwrap()).is_some(), "live branch kept");
    assert!(s.cfg.label("LIVE").is_some() && s.cfg.label("DEAD").is_none());
}

#[test]
fn call_havocs_modified_globals() {
    // `flip` rewrites g, so the branch on g after the call must survive.
    let cfg = build(
        r#"
        decl g;
        main() begin
          g := F;
          call flip();
          if (g) then HIT: skip; fi;
        end
        flip() begin
          g := T;
        end
        "#,
    );
    let s = slice(&cfg, &AnalysisOptions::sequential());
    assert!(s.map_pc(cfg.label("HIT").unwrap()).is_some());
    assert!(s.analysis.callgraph.mod_globals[1].contains(&0));
}

#[test]
fn dead_globals_and_locals_are_deleted() {
    let s = seq_slice(
        r#"
        decl g, junk;
        main() begin
          decl x, scratch;
          junk := T;
          scratch := junk;
          x := *;
          g := x;
          if (g) then HIT: skip; fi;
        end
        "#,
    );
    // `junk` and `scratch` only feed each other — both faint.
    assert_eq!(s.cfg.globals, vec!["g"]);
    assert_eq!(s.cfg.procs[0].locals, vec!["x"]);
    assert!(s.stats.globals_after < s.stats.globals_before);
    assert!(s.stats.max_locals_after < s.stats.max_locals_before);
}

#[test]
fn unused_parameters_and_return_slots_are_dropped() {
    let s = seq_slice(
        r#"
        decl g;
        main() begin
          decl a, b;
          a, b := f(g, T);
          g := a;
          if (g) then HIT: skip; fi;
        end
        f(x, unused) returns 2 begin
          return x, F;
        end
        "#,
    );
    let f = s.cfg.proc_by_name("f").expect("f kept");
    assert_eq!(f.params, 1, "unused parameter dropped");
    assert_eq!(f.locals, vec!["x"]);
    assert_eq!(f.returns, 1, "unused return slot dropped");
    for exit in &f.exits {
        assert_eq!(exit.ret_exprs.len(), 1);
    }
    let main = &s.cfg.procs[s.cfg.main];
    for edges in main.edges.values() {
        for e in edges {
            if let Edge::Call { args, rets, .. } = e {
                assert_eq!(args.len(), 1);
                assert_eq!(rets.len(), 1);
            }
        }
    }
}

#[test]
fn live_ret_slot_at_one_site_keeps_every_sites_receiver() {
    // Site 1 reads the return; site 2 discards it. The slot stays, so
    // site 2's receiver must stay representable (kept).
    let s = seq_slice(
        r#"
        decl g;
        main() begin
          decl a, b;
          a := f();
          g := a;
          b := f();
          if (g) then HIT: skip; fi;
        end
        f() returns 1 begin
          return T;
        end
        "#,
    );
    let main = &s.cfg.procs[s.cfg.main];
    assert!(main.locals.contains(&"b".to_string()), "discarding receiver kept");
}

#[test]
fn guard_refinement_sees_through_if_lowering() {
    // In the then-branch c is known true, so the inner else is dead.
    let cfg = build(
        r#"
        main() begin
          decl c;
          c := *;
          if (c) then
            if (c) then
              LIVE: skip;
            else
              DEAD: skip;
            fi;
          fi;
        end
        "#,
    );
    let s = slice(&cfg, &AnalysisOptions::sequential());
    assert!(s.map_pc(cfg.label("DEAD").unwrap()).is_none());
    assert!(s.map_pc(cfg.label("LIVE").unwrap()).is_some());
}

#[test]
fn lines_and_labels_survive_renumbering() {
    let cfg = build(
        r#"decl g;
main() begin
  g := T;
  HIT: skip;
end
unused() begin
  skip;
end"#,
    );
    let s = slice(&cfg, &AnalysisOptions::sequential());
    let old = cfg.label("HIT").unwrap();
    let new = s.cfg.label("HIT").unwrap();
    assert_eq!(s.map_pc(old), Some(new));
    assert_eq!(cfg.line_of(old), s.cfg.line_of(new));
    assert_eq!(s.cfg.line_of(new), Some(4));
}

#[test]
fn concurrent_mode_never_trusts_globals() {
    // Sequentially `g := F; if (g)` makes HIT dead — but under
    // concurrency another thread may set g between the two statements.
    let cfg = build(
        r#"
        decl g;
        main() begin
          g := F;
          if (g) then HIT: skip; fi;
        end
        "#,
    );
    let seq = slice(&cfg, &AnalysisOptions::sequential());
    assert!(seq.map_pc(cfg.label("HIT").unwrap()).is_none());
    let conc = slice(&cfg, &AnalysisOptions { roots: vec![], targets: vec![], concurrent: true });
    assert!(conc.map_pc(cfg.label("HIT").unwrap()).is_some());
}

#[test]
fn assert_facts_are_classified() {
    let findings = lint(
        &build(
            r#"
            decl g;
            main() begin
              g := T;
              assert (g);
              g := F;
              assert (g);
            end
            "#,
        ),
        &AnalysisOptions::sequential(),
    );
    let kinds: Vec<FindingKind> = findings.iter().map(|f| f.kind).collect();
    assert!(kinds.contains(&FindingKind::AssertNeverFails));
    assert!(kinds.contains(&FindingKind::AssertAlwaysFails));
    let never = findings.iter().find(|f| f.kind == FindingKind::AssertNeverFails).unwrap();
    assert_eq!(never.severity, Severity::Info);
}

#[test]
fn lint_findings_are_deterministically_ordered() {
    let cfg = build(
        r#"
        decl g, junk;
        main() begin
          decl x;
          g := F;
          if (g) then DEAD: skip; fi;
          HIT: skip;
        end
        orphan() begin
          junk := T;
        end
        "#,
    );
    let opts = AnalysisOptions::sequential();
    let a = lint(&cfg, &opts);
    let b = lint(&cfg, &opts);
    assert_eq!(a, b);
    let kinds: Vec<&'static str> = a.iter().map(|f| f.kind.slug()).collect();
    assert_eq!(
        kinds,
        vec!["dead-proc", "dead-global", "dead-local", "unreachable-code", "infeasible-branch"]
    );
}

#[test]
fn identity_slice_when_nothing_prunable() {
    let src = r#"
        decl g;
        main() begin
          g := *;
          if (g) then HIT: skip; fi;
        end
        "#;
    let cfg = build(src);
    let s = slice(&cfg, &AnalysisOptions::sequential());
    assert_eq!(s.cfg.pc_count, cfg.pc_count);
    assert_eq!(s.cfg.globals, cfg.globals);
    assert!(!s.stats.reduced());
    assert!(lint(&cfg, &AnalysisOptions::sequential()).is_empty());
}

#[test]
fn goto_across_procedures_abstains() {
    // A goto to a label in another procedure is structurally expressible;
    // the analysis must refuse to prune rather than mis-model it.
    use crate::ast::{Proc, Program, Stmt, StmtKind};
    // `other` is lowered first so its label is known when `main`'s goto
    // resolves — a backward cross-procedure jump.
    let program = Program {
        globals: vec![],
        procs: vec![
            Proc {
                name: "other".into(),
                params: vec![],
                returns: 0,
                locals: vec![],
                body: vec![Stmt::labeled("ELSEWHERE", StmtKind::Skip)],
            },
            Proc {
                name: "main".into(),
                params: vec![],
                returns: 0,
                locals: vec![],
                body: vec![Stmt::new(StmtKind::Goto("ELSEWHERE".into()))],
            },
        ],
    };
    let cfg = Cfg::build(&program).expect("lower");
    let s = slice(&cfg, &AnalysisOptions::sequential());
    assert!(s.analysis.abstained);
    assert_eq!(s.cfg.pc_count, cfg.pc_count);
    let findings = lint(&cfg, &AnalysisOptions::sequential());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].kind.slug(), "abstained");
}

#[test]
fn slicing_reduces_state_bits_on_baggage() {
    // Enough dead pcs to cross a PC-range power-of-two boundary plus dead
    // variables: the encoder's per-frame bit budget must strictly shrink.
    let s = seq_slice(
        r#"
        decl g, d0, d1, d2;
        main() begin
          decl x;
          x := *;
          g := x;
          if (g) then HIT: skip; fi;
        end
        ballast() begin
          decl a, b, c;
          a := *; b := a; c := b;
          a := *; b := a; c := b;
          a := *; b := a; c := b;
          a := *; b := a; c := b;
        end
        "#,
    );
    assert!(s.stats.state_bits_after < s.stats.state_bits_before, "{:?}", s.stats);
    assert!(s.stats.relations_pruned() > 0);
}

#[test]
fn oracle_differential_over_feature_corpus() {
    for src in [
        // Recursion with a dead helper.
        r#"
        decl g;
        main() begin
          decl x;
          x := *;
          g := even(x);
          if (g) then HIT: skip; fi;
        end
        even(n) returns 1 begin
          decl r;
          if (n) then r := odd(!n); else r := T; fi;
          return r;
        end
        odd(n) returns 1 begin
          decl r;
          if (n) then r := even(!n); else r := F; fi;
          return r;
        end
        corpse() begin
          g := T;
        end
        "#,
        // Constant guards, while loops, assume.
        r#"
        decl g;
        main() begin
          decl x;
          g := F;
          while (!g) do
            g := *;
          od;
          assume (g);
          if (!g) then DEAD: skip; fi;
          HIT: skip;
        end
        "#,
        // Asserts in both flavors.
        r#"
        decl g;
        main() begin
          g := T;
          assert (g);
          g := *;
          assert (g);
          HIT: skip;
        end
        "#,
        // schoose and dead-variable havoc.
        r#"
        decl g;
        main() begin
          decl x, y;
          dead x, y;
          g := schoose [x, y];
          if (g) then HIT: skip; fi;
        end
        "#,
        // Multi-return with partially-dead slots; goto.
        r#"
        decl g;
        main() begin
          decl a, b;
          a, b := pair();
          g := a;
          goto L;
          g := b;
          L: if (g) then HIT: skip; fi;
        end
        pair() returns 2 begin
          return *, F;
        end
        "#,
    ] {
        assert_slice_preserves_verdicts(src);
    }
}
