//! The verdict-preserving program slicer.
//!
//! Rewrites a [`Cfg`] into an equivalent, smaller one using the facts
//! from [`analyze`]: dead procedures are dropped, statically-unreachable
//! pcs and infeasible edges are pruned, and faint variables — globals,
//! locals, parameters, and whole return slots — are deleted, with every
//! call site's argument/receiver lists rewritten to match. Pcs are
//! renumbered densely (preserving per-procedure contiguity and relative
//! order), which shrinks the solver's `PC` range type; variable deletion
//! shrinks the `Global`/`Local` bit vectors. The label and pc→line maps
//! are carried through the renumbering, so `--trace` witnesses on the
//! sliced program still print real source locations.
//!
//! Reachability verdicts are preserved: a target whose pc survives is
//! reachable in the slice iff it was reachable in the original, and a
//! target whose pc was pruned is provably unreachable (see
//! [`Slice::map_pc`] returning `None`).

use super::{analyze, Analysis, AnalysisOptions};
use crate::cfg::{Cfg, Edge, ExitPoint, LExpr, Pc, ProcCfg, ProcId, VarRef};
use std::collections::BTreeMap;

/// Before/after size accounting for one slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceStats {
    pub procs_before: usize,
    pub procs_after: usize,
    pub pcs_before: usize,
    pub pcs_after: usize,
    pub edges_before: usize,
    pub edges_after: usize,
    pub globals_before: usize,
    pub globals_after: usize,
    pub max_locals_before: usize,
    pub max_locals_after: usize,
    /// State bits the encoder will allocate per frame copy:
    /// `range_width(pc_count) + max(globals, 1) + max(max_locals, 1)`.
    pub state_bits_before: usize,
    pub state_bits_after: usize,
}

impl SliceStats {
    /// CFG relations removed: pruned edges plus dropped procedures.
    pub fn relations_pruned(&self) -> usize {
        (self.edges_before - self.edges_after) + (self.procs_before - self.procs_after)
    }

    /// Did the slice shrink anything at all?
    pub fn reduced(&self) -> bool {
        self.pcs_after < self.pcs_before
            || self.edges_after < self.edges_before
            || self.globals_after < self.globals_before
            || self.max_locals_after < self.max_locals_before
    }
}

/// State bits per frame copy, mirroring the encoder's type declarations
/// (`PC: Range(pc_count)`, `Global: Bits(globals)`, `Local: Bits(max_locals)`).
fn state_bits(cfg: &Cfg) -> usize {
    let pc = cfg.pc_count.max(1) as u64;
    let pc_bits = if pc <= 1 { 1 } else { (64 - (pc - 1).leading_zeros()) as usize };
    pc_bits + cfg.globals.len().max(1) + cfg.max_locals().max(1)
}

fn edge_count(cfg: &Cfg) -> usize {
    cfg.procs.iter().map(|p| p.edges.values().map(Vec::len).sum::<usize>()).sum()
}

/// The result of slicing.
#[derive(Debug, Clone)]
pub struct Slice {
    /// The rewritten program.
    pub cfg: Cfg,
    /// Surviving pcs, old → new. A pc absent here was pruned — and is
    /// therefore provably unreachable.
    pub pc_map: BTreeMap<Pc, Pc>,
    /// Surviving procedures, old id → new id.
    pub proc_map: BTreeMap<ProcId, ProcId>,
    /// The analysis the slice was computed from.
    pub analysis: Analysis,
    /// Size accounting.
    pub stats: SliceStats,
}

impl Slice {
    /// The new pc for an original pc, or `None` if it was pruned
    /// (provably unreachable).
    pub fn map_pc(&self, pc: Pc) -> Option<Pc> {
        self.pc_map.get(&pc).copied()
    }

    /// Maps a target list into the slice, dropping pruned (unreachable)
    /// targets.
    pub fn map_targets(&self, targets: &[Pc]) -> Vec<Pc> {
        targets.iter().filter_map(|&pc| self.map_pc(pc)).collect()
    }
}

/// Slices a CFG. Always succeeds; when the analysis abstains the result
/// is the identity slice (a verbatim copy with identity maps).
pub fn slice(cfg: &Cfg, opts: &AnalysisOptions) -> Slice {
    slice_with(cfg, analyze(cfg, opts))
}

/// Slices a CFG from precomputed analysis facts.
pub fn slice_with(cfg: &Cfg, analysis: Analysis) -> Slice {
    let before = (cfg.procs.len(), cfg.pc_count as usize, edge_count(cfg));
    if analysis.abstained {
        let pc_map = (0..cfg.pc_count).map(|pc| (pc, pc)).collect();
        let proc_map = (0..cfg.procs.len()).map(|id| (id, id)).collect();
        let bits = state_bits(cfg);
        return Slice {
            cfg: cfg.clone(),
            pc_map,
            proc_map,
            analysis,
            stats: SliceStats {
                procs_before: before.0,
                procs_after: before.0,
                pcs_before: before.1,
                pcs_after: before.1,
                edges_before: before.2,
                edges_after: before.2,
                globals_before: cfg.globals.len(),
                globals_after: cfg.globals.len(),
                max_locals_before: cfg.max_locals(),
                max_locals_after: cfg.max_locals(),
                state_bits_before: bits,
                state_bits_after: bits,
            },
        };
    }

    // Variable renumbering. Globals: kept iff live. Locals: kept iff
    // live; order is preserved, so kept parameters stay a prefix of the
    // kept locals. Return slots: kept iff live at some call site.
    let global_map: Vec<Option<usize>> = renumber(&analysis.live_globals);
    let local_maps: Vec<Vec<Option<usize>>> =
        analysis.live_locals.iter().map(|l| renumber(l)).collect();
    let ret_maps: Vec<Vec<Option<usize>>> =
        analysis.live_ret_slots.iter().map(|r| renumber(r)).collect();

    // Procedure and pc renumbering: original order, reachable pcs only.
    let mut proc_map = BTreeMap::new();
    let mut pc_map = BTreeMap::new();
    let mut next_pc: Pc = 0;
    for proc in &cfg.procs {
        if !analysis.live_procs[proc.id] {
            continue;
        }
        let new_id = proc_map.len();
        proc_map.insert(proc.id, new_id);
        for pc in proc.pc_range.0..proc.pc_range.1 {
            if analysis.reachable_pcs[pc as usize] {
                pc_map.insert(pc, next_pc);
                next_pc += 1;
            }
        }
    }

    let remap_var = |proc: ProcId, v: VarRef| -> VarRef {
        match v {
            VarRef::Global(g) => VarRef::Global(global_map[g].expect("remapped global is live")),
            VarRef::Local(l) => VarRef::Local(local_maps[proc][l].expect("remapped local is live")),
        }
    };

    let mut procs = Vec::new();
    for proc in &cfg.procs {
        if !analysis.live_procs[proc.id] {
            continue;
        }
        let remap_expr = |e: &LExpr| remap_lexpr(e, &|v| remap_var(proc.id, v));
        let infeasible = |pc: Pc, idx: usize| {
            analysis.infeasible_edges.iter().any(|&(p, i)| p == pc && i == idx)
        };

        // New pcs were assigned sequentially in ascending old order, so
        // the kept pcs of this procedure form a contiguous new range. The
        // entry is always reachable, so the range is never empty.
        let kept_pcs: Vec<Pc> = (proc.pc_range.0..proc.pc_range.1)
            .filter(|pc| analysis.reachable_pcs[*pc as usize])
            .map(|pc| pc_map[&pc])
            .collect();
        let range_lo = *kept_pcs.first().expect("live procedure keeps its entry");
        let range_hi = kept_pcs.last().expect("live procedure keeps its entry") + 1;

        let mut edges: BTreeMap<Pc, Vec<Edge>> = BTreeMap::new();
        for (pc, old_edges) in &proc.edges {
            if !analysis.reachable_pcs[*pc as usize] {
                continue;
            }
            let mut kept = Vec::new();
            for (idx, edge) in old_edges.iter().enumerate() {
                if infeasible(*pc, idx) {
                    continue;
                }
                kept.push(match edge {
                    Edge::Internal { to, guard, assigns } => Edge::Internal {
                        to: pc_map[to],
                        guard: remap_expr(guard),
                        assigns: assigns
                            .iter()
                            .filter(|(target, _)| is_live(&analysis, proc.id, *target))
                            .map(|(target, e)| (remap_var(proc.id, *target), remap_expr(e)))
                            .collect(),
                    },
                    Edge::Call { callee, args, rets, ret_to } => Edge::Call {
                        callee: proc_map[callee],
                        args: args
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| local_maps[*callee][*i].is_some())
                            .map(|(_, a)| remap_expr(a))
                            .collect(),
                        rets: rets
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| ret_maps[*callee][*j].is_some())
                            .map(|(_, r)| remap_var(proc.id, *r))
                            .collect(),
                        ret_to: pc_map[ret_to],
                    },
                });
            }
            if !kept.is_empty() {
                edges.insert(pc_map[pc], kept);
            }
        }

        let mut exits = Vec::new();
        for exit in &proc.exits {
            if !analysis.reachable_pcs[exit.pc as usize] {
                continue;
            }
            exits.push(ExitPoint {
                pc: pc_map[&exit.pc],
                ret_exprs: exit
                    .ret_exprs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| ret_maps[proc.id][*j].is_some())
                    .map(|(_, e)| remap_expr(e))
                    .collect(),
            });
        }

        let kept_locals: Vec<String> = proc
            .locals
            .iter()
            .enumerate()
            .filter(|(i, _)| local_maps[proc.id][*i].is_some())
            .map(|(_, name)| name.clone())
            .collect();
        let kept_params = (0..proc.params).filter(|&i| local_maps[proc.id][i].is_some()).count();

        procs.push(ProcCfg {
            name: proc.name.clone(),
            id: proc_map[&proc.id],
            params: kept_params,
            returns: ret_maps[proc.id].iter().filter(|s| s.is_some()).count(),
            locals: kept_locals,
            entry: pc_map[&proc.entry],
            pc_range: (range_lo, range_hi),
            edges,
            exits,
            error_pc: proc
                .error_pc
                .filter(|pc| analysis.reachable_pcs[*pc as usize])
                .map(|pc| pc_map[&pc]),
        });
    }

    let globals: Vec<String> = cfg
        .globals
        .iter()
        .enumerate()
        .filter(|(g, _)| global_map[*g].is_some())
        .map(|(_, name)| name.clone())
        .collect();
    let labels: BTreeMap<String, Pc> = cfg
        .labels
        .iter()
        .filter_map(|(name, pc)| pc_map.get(pc).map(|&new| (name.clone(), new)))
        .collect();
    let lines: BTreeMap<Pc, u32> =
        cfg.lines.iter().filter_map(|(pc, line)| pc_map.get(pc).map(|&new| (new, *line))).collect();

    let sliced =
        Cfg { globals, main: proc_map[&cfg.main], procs, pc_count: next_pc, labels, lines };
    debug_assert!(validate(&sliced), "slicer produced an inconsistent CFG");

    let stats = SliceStats {
        procs_before: before.0,
        procs_after: sliced.procs.len(),
        pcs_before: before.1,
        pcs_after: sliced.pc_count as usize,
        edges_before: before.2,
        edges_after: edge_count(&sliced),
        globals_before: cfg.globals.len(),
        globals_after: sliced.globals.len(),
        max_locals_before: cfg.max_locals(),
        max_locals_after: sliced.max_locals(),
        state_bits_before: state_bits(cfg),
        state_bits_after: state_bits(&sliced),
    };
    Slice { cfg: sliced, pc_map, proc_map, analysis, stats }
}

fn is_live(analysis: &Analysis, proc: ProcId, v: VarRef) -> bool {
    match v {
        VarRef::Global(g) => analysis.live_globals[g],
        VarRef::Local(l) => analysis.live_locals[proc][l],
    }
}

/// Old index → new index for the kept (`true`) entries, order-preserving.
fn renumber(kept: &[bool]) -> Vec<Option<usize>> {
    let mut next = 0;
    kept.iter()
        .map(|&keep| {
            if keep {
                let i = next;
                next += 1;
                Some(i)
            } else {
                None
            }
        })
        .collect()
}

fn remap_lexpr(e: &LExpr, f: &impl Fn(VarRef) -> VarRef) -> LExpr {
    match e {
        LExpr::Const(b) => LExpr::Const(*b),
        LExpr::Nondet => LExpr::Nondet,
        LExpr::Var(v) => LExpr::Var(f(*v)),
        LExpr::Not(a) => LExpr::Not(Box::new(remap_lexpr(a, f))),
        LExpr::And(a, b) => LExpr::And(Box::new(remap_lexpr(a, f)), Box::new(remap_lexpr(b, f))),
        LExpr::Or(a, b) => LExpr::Or(Box::new(remap_lexpr(a, f)), Box::new(remap_lexpr(b, f))),
        LExpr::Eq(a, b) => LExpr::Eq(Box::new(remap_lexpr(a, f)), Box::new(remap_lexpr(b, f))),
        LExpr::Ne(a, b) => LExpr::Ne(Box::new(remap_lexpr(a, f)), Box::new(remap_lexpr(b, f))),
        LExpr::Schoose(a, b) => {
            LExpr::Schoose(Box::new(remap_lexpr(a, f)), Box::new(remap_lexpr(b, f)))
        }
    }
}

/// Structural invariants the rest of the pipeline relies on: dense,
/// disjoint, in-order pc ranges; edges and exits inside their procedure;
/// call targets valid; expression variable references in range.
fn validate(cfg: &Cfg) -> bool {
    let mut next = 0;
    for proc in &cfg.procs {
        if proc.pc_range.0 != next || proc.pc_range.1 < proc.pc_range.0 {
            return false;
        }
        next = proc.pc_range.1;
        if !proc.contains(proc.entry) || proc.params > proc.locals.len() {
            return false;
        }
        for (pc, edges) in &proc.edges {
            if !proc.contains(*pc) {
                return false;
            }
            for edge in edges {
                match edge {
                    Edge::Internal { to, .. } => {
                        if !proc.contains(*to) {
                            return false;
                        }
                    }
                    Edge::Call { callee, args, rets, ret_to } => {
                        if *callee >= cfg.procs.len() || !proc.contains(*ret_to) {
                            return false;
                        }
                        let target = &cfg.procs[*callee];
                        if args.len() != target.params || rets.len() != target.returns {
                            return false;
                        }
                    }
                }
            }
        }
        for exit in &proc.exits {
            if !proc.contains(exit.pc) || exit.ret_exprs.len() != proc.returns {
                return false;
            }
        }
    }
    next == cfg.pc_count
}
