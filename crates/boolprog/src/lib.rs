//! Recursive Boolean programs: the input language of the Getafix
//! reproduction (§2 and §5 of the paper).
//!
//! The crate provides:
//!
//! * the AST ([`Program`], [`Proc`], [`Stmt`], [`Expr`]) for the paper's
//!   grammar plus the benchmark-suite extensions (`assert`, `assume`,
//!   `goto`/labels, `dead`, `schoose`);
//! * a parser ([`parse_program`], [`parse_concurrent`]) and a
//!   pretty-printer that round-trip;
//! * CFG lowering with full semantic checking ([`Cfg::build`]);
//! * an explicit-state summary-based reachability oracle
//!   ([`explicit_reachable`]) used for differential testing of every
//!   symbolic engine in the workspace;
//! * pre-solve static analysis ([`analysis`]): call-graph dead-procedure
//!   detection, constant propagation, interprocedural faint-variable
//!   liveness, dataflow lints, and a verdict-preserving program slicer
//!   ([`analysis::slice`]) that shrinks the BDD encoding.
//!
//! # Example
//!
//! ```
//! use getafix_boolprog::{parse_program, Cfg, explicit_reachable_label};
//!
//! let program = parse_program(r#"
//!     decl g;
//!     main() begin
//!       decl x;
//!       x := *;
//!       g := check(x);
//!       if (g) then HIT: skip; fi;
//!     end
//!     check(a) returns 1 begin
//!       return !a;
//!     end
//! "#)?;
//! let cfg = Cfg::build(&program)?;
//! let result = explicit_reachable_label(&cfg, "HIT", 100_000)?.expect("label exists");
//! assert!(result.reachable);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
mod ast;
mod bits;
mod cfg;
mod interp;
mod parse;
mod replay;

pub use analysis::{AnalysisOptions, Slice, SliceStats};
pub use ast::{ConcProgram, Expr, Proc, Program, ProgramMetadata, Stmt, StmtKind};
pub use bits::{admits, enumerate_choices, frame_mask, next_states, read_var, write_var, Bits};
pub use cfg::{BuildError, Cfg, Edge, ExitPoint, LExpr, Pc, ProcCfg, ProcId, VarRef};
pub use interp::{explicit_reachable, explicit_reachable_label, ExplicitError, ExplicitResult};
pub use parse::{parse_concurrent, parse_program, ParseError};
pub use replay::{replay, ReplayError, ReplayStep};
