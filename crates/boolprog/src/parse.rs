//! Parser for the concrete syntax of Boolean programs.
//!
//! The grammar follows §2 of the paper with a concrete rendering:
//!
//! ```text
//! decl g1, g2;
//!
//! main() begin
//!   decl x;
//!   x := T;
//!   x, g1 := f(x, *);
//!   if (x & !g1) then ERR: skip; fi;
//!   while (*) do call f(T, F); od;
//! end
//!
//! f(a, b) returns 2 begin
//!   return a | b, schoose [a, b];
//! end
//! ```
//!
//! Extensions used by the benchmark suites: `assert(e)`, `assume(e)`,
//! `goto L`, labels (`L: stmt`), `dead x, y` and `schoose [pos, neg]`.
//! Concurrent programs (§5) wrap thread programs in `thread … endthread`
//! after a `shared` declaration.

use crate::ast::{ConcProgram, Expr, Proc, Program, Stmt, StmtKind};
use std::fmt;

/// Parse error with 1-based position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a sequential Boolean program.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut p = Parser::new(src)?;
    let prog = p.parse_program()?;
    if !p.at_end() {
        return Err(p.err("trailing input after program"));
    }
    Ok(prog)
}

/// Parses a concurrent Boolean program (`shared …; thread … endthread …`).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
pub fn parse_concurrent(src: &str) -> Result<ConcProgram, ParseError> {
    let mut p = Parser::new(src)?;
    let mut shared = Vec::new();
    if p.eat_kw("shared") {
        shared = p.parse_ident_list()?;
        p.expect_sym(";")?;
    }
    let mut threads = Vec::new();
    while p.eat_kw("thread") {
        let prog = p.parse_program_until(Some("endthread"))?;
        p.expect_kw("endthread")?;
        threads.push(prog);
    }
    if !p.at_end() {
        return Err(p.err("expected `thread` or end of input"));
    }
    Ok(ConcProgram { shared, threads })
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    Sym(&'static str),
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

const KEYWORDS: &[&str] = &[
    "decl",
    "begin",
    "end",
    "skip",
    "call",
    "return",
    "returns",
    "if",
    "then",
    "else",
    "fi",
    "while",
    "do",
    "od",
    "assert",
    "assume",
    "goto",
    "dead",
    "schoose",
    "shared",
    "thread",
    "endthread",
];

fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let (mut i, mut line, mut col) = (0usize, 1usize, 1usize);
    let n = chars.len();
    while i < n {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= n {
                        return Err(ParseError {
                            message: "unterminated block comment".into(),
                            line,
                            col,
                        });
                    }
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            _ => {
                let two: String = chars[i..n.min(i + 2)].iter().collect();
                let sym2 = [":=", "!="].iter().find(|&&s| s == two);
                if let Some(&s) = sym2 {
                    out.push(Spanned { tok: Tok::Sym(s), line, col });
                    i += 2;
                    col += 2;
                    continue;
                }
                let sym1 = ["(", ")", "[", "]", ",", ";", ":", "&", "|", "!", "=", "*"]
                    .iter()
                    .find(|&&s| s.starts_with(c));
                if let Some(&s) = sym1 {
                    out.push(Spanned { tok: Tok::Sym(s), line, col });
                    i += 1;
                    col += 1;
                    continue;
                }
                if c.is_ascii_digit() {
                    let start = i;
                    while i < n && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().collect();
                    let v = text.parse().map_err(|_| ParseError {
                        message: format!("integer `{text}` out of range"),
                        line,
                        col,
                    })?;
                    out.push(Spanned { tok: Tok::Int(v), line, col });
                    col += i - start;
                    continue;
                }
                if c.is_ascii_alphabetic() || c == '_' {
                    let start = i;
                    while i < n
                        && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '$')
                    {
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().collect();
                    out.push(Spanned { tok: Tok::Ident(text), line, col });
                    col += i - start;
                    continue;
                }
                return Err(ParseError {
                    message: format!("unexpected character `{c}`"),
                    line,
                    col,
                });
            }
        }
    }
    Ok(out)
}

/// Upper bound on a procedure's `returns N` count. Return tuples lower
/// to one CFG expression per slot, so an absurd count in a hostile file
/// would become an equally absurd allocation during lowering; anything
/// past this is a parse error instead.
const MAX_RETURNS: usize = 1024;

/// Upper bound on syntactic nesting (statement bodies and expression
/// parentheses). Recursive descent turns input nesting into call-stack
/// depth, so without a bound a file of a few hundred thousand open
/// parens crashes the process with a stack overflow — an abort, not a
/// [`ParseError`]. Real programs nest a handful of levels; the bound is
/// sized so even the fat statement-level frames of a debug build fit a
/// 2 MiB thread stack with room to spare. NB: a fully parenthesized
/// printed `&`-chain nests one level per conjunct, so this also caps
/// re-parseable chain width — keep it comfortably above workload sizes.
const MAX_NESTING: usize = 100;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Current nesting depth across both recursion cycles; see
    /// [`Parser::descend`].
    depth: usize,
    /// Procedure name → 1-based line of its first definition, within the
    /// current program unit (reset per thread in concurrent programs).
    procs_seen: std::collections::BTreeMap<String, usize>,
    /// Label → 1-based line of its first occurrence; labels share one
    /// program-wide namespace (reachability targets), so duplicates are
    /// rejected across procedures too.
    labels_seen: std::collections::BTreeMap<String, usize>,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            tokens: lex(src)?,
            pos: 0,
            depth: 0,
            procs_seen: Default::default(),
            labels_seen: Default::default(),
        })
    }

    /// Enters one nesting level, rejecting input deeper than
    /// [`MAX_NESTING`]. Callers pair this with a `self.depth -= 1` on
    /// their success path; error paths abort the whole parse, so a stale
    /// count cannot leak into later parsing.
    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(self.err(format!("nesting deeper than {MAX_NESTING} levels")));
        }
        Ok(())
    }

    /// Position of the token at `idx` (1-based), for error anchoring.
    fn span_at(&self, idx: usize) -> (usize, usize) {
        self.tokens.get(idx).map(|s| (s.line, s.col)).unwrap_or((0, 0))
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|s| &s.tok)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| (s.line, s.col))
            .unwrap_or((0, 0));
        ParseError { message: msg.into(), line, col }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn is_sym(&self, s: &str) -> bool {
        matches!(self.peek(), Some(Tok::Sym(t)) if *t == s)
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.is_sym(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(t)) if t == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) if !KEYWORDS.contains(&s.as_str()) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(Tok::Ident(s)) => Err(self.err(format!("`{s}` is a keyword"))),
            _ => Err(self.err("expected an identifier")),
        }
    }

    fn parse_ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut out = vec![self.expect_ident()?];
        while self.eat_sym(",") {
            out.push(self.expect_ident()?);
        }
        Ok(out)
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        self.parse_program_until(None)
    }

    fn parse_program_until(&mut self, stop_kw: Option<&str>) -> Result<Program, ParseError> {
        // Each program unit (a sequential program, or one thread of a
        // concurrent one) is its own namespace for procedures and labels.
        self.procs_seen.clear();
        self.labels_seen.clear();
        let mut globals = Vec::new();
        while self.eat_kw("decl") {
            globals.extend(self.parse_ident_list()?);
            self.expect_sym(";")?;
        }
        let mut procs = Vec::new();
        loop {
            if self.at_end() {
                break;
            }
            if let Some(kw) = stop_kw {
                if self.is_kw(kw) {
                    break;
                }
            }
            procs.push(self.parse_proc()?);
        }
        if procs.is_empty() {
            return Err(self.err("a program needs at least one procedure"));
        }
        Ok(Program { globals, procs })
    }

    fn parse_proc(&mut self) -> Result<Proc, ParseError> {
        let name = self.expect_ident()?;
        let (line, col) = self.span_at(self.pos - 1);
        if let Some(&first) = self.procs_seen.get(&name) {
            return Err(ParseError {
                message: format!(
                    "procedure `{name}` defined twice (first definition at line {first})"
                ),
                line,
                col,
            });
        }
        self.procs_seen.insert(name.clone(), line);
        self.expect_sym("(")?;
        let mut params = Vec::new();
        if !self.is_sym(")") {
            params = self.parse_ident_list()?;
        }
        self.expect_sym(")")?;
        let mut returns = 0usize;
        if self.eat_kw("returns") {
            match self.bump() {
                Some(Tok::Int(v)) if v <= MAX_RETURNS as u64 => returns = v as usize,
                Some(Tok::Int(v)) => {
                    return Err(self.err(format!(
                        "`returns {v}` exceeds the supported maximum of {MAX_RETURNS} \
                         return values"
                    )))
                }
                _ => return Err(self.err("expected a count after `returns`")),
            }
        }
        self.expect_kw("begin")?;
        let mut locals = Vec::new();
        while self.eat_kw("decl") {
            locals.extend(self.parse_ident_list()?);
            self.expect_sym(";")?;
        }
        let body = self.parse_stmts(&["end"])?;
        self.expect_kw("end")?;
        Ok(Proc { name, params, returns, locals, body })
    }

    /// Parses statements until one of the given closing keywords.
    fn parse_stmts(&mut self, closers: &[&str]) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            if self.at_end() {
                return Err(self.err(format!("expected one of {closers:?}")));
            }
            if closers.iter().any(|c| self.is_kw(c)) {
                return Ok(out);
            }
            out.push(self.parse_stmt()?);
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.descend()?;
        let stmt = self.parse_stmt_at_depth();
        self.depth -= 1;
        stmt
    }

    fn parse_stmt_at_depth(&mut self) -> Result<Stmt, ParseError> {
        let line = self.tokens.get(self.pos).map(|s| s.line as u32);
        // Optional label: IDENT ':' not followed by '='.
        let label = if matches!(self.peek(), Some(Tok::Ident(s)) if !KEYWORDS.contains(&s.as_str()))
            && matches!(self.peek2(), Some(Tok::Sym(":")))
        {
            let l = self.expect_ident()?;
            let (lline, lcol) = self.span_at(self.pos - 1);
            if let Some(&first) = self.labels_seen.get(&l) {
                return Err(ParseError {
                    message: format!(
                        "label `{l}` declared twice (first declaration at line {first})"
                    ),
                    line: lline,
                    col: lcol,
                });
            }
            self.labels_seen.insert(l.clone(), lline);
            self.expect_sym(":")?;
            Some(l)
        } else {
            None
        };
        let kind = self.parse_stmt_kind()?;
        Ok(Stmt { label, kind, line })
    }

    fn parse_stmt_kind(&mut self) -> Result<StmtKind, ParseError> {
        if self.eat_kw("skip") {
            self.expect_sym(";")?;
            return Ok(StmtKind::Skip);
        }
        if self.eat_kw("call") {
            let callee = self.expect_ident()?;
            self.expect_sym("(")?;
            let args = self.parse_expr_list_until(")")?;
            self.expect_sym(")")?;
            self.expect_sym(";")?;
            return Ok(StmtKind::Call { callee, args });
        }
        if self.eat_kw("return") {
            let exprs =
                if self.is_sym(";") { Vec::new() } else { self.parse_expr_list_until(";")? };
            self.expect_sym(";")?;
            return Ok(StmtKind::Return(exprs));
        }
        if self.eat_kw("if") {
            self.expect_sym("(")?;
            let cond = self.parse_expr()?;
            self.expect_sym(")")?;
            self.expect_kw("then")?;
            let then_branch = self.parse_stmts(&["else", "fi"])?;
            let else_branch =
                if self.eat_kw("else") { self.parse_stmts(&["fi"])? } else { Vec::new() };
            self.expect_kw("fi")?;
            self.eat_sym(";");
            return Ok(StmtKind::If { cond, then_branch, else_branch });
        }
        if self.eat_kw("while") {
            self.expect_sym("(")?;
            let cond = self.parse_expr()?;
            self.expect_sym(")")?;
            self.expect_kw("do")?;
            let body = self.parse_stmts(&["od"])?;
            self.expect_kw("od")?;
            self.eat_sym(";");
            return Ok(StmtKind::While { cond, body });
        }
        if self.eat_kw("assert") {
            self.expect_sym("(")?;
            let e = self.parse_expr()?;
            self.expect_sym(")")?;
            self.expect_sym(";")?;
            return Ok(StmtKind::Assert(e));
        }
        if self.eat_kw("assume") {
            self.expect_sym("(")?;
            let e = self.parse_expr()?;
            self.expect_sym(")")?;
            self.expect_sym(";")?;
            return Ok(StmtKind::Assume(e));
        }
        if self.eat_kw("goto") {
            let l = self.expect_ident()?;
            self.expect_sym(";")?;
            return Ok(StmtKind::Goto(l));
        }
        if self.eat_kw("dead") {
            let vars = self.parse_ident_list()?;
            self.expect_sym(";")?;
            return Ok(StmtKind::Dead(vars));
        }
        // Assignment: idents := exprs | idents := callee(args)
        let targets = self.parse_ident_list()?;
        self.expect_sym(":=")?;
        // Call if single ident followed by '(' — distinguished from an
        // expression list starting with a variable.
        if matches!(self.peek(), Some(Tok::Ident(s)) if !KEYWORDS.contains(&s.as_str()))
            && matches!(self.peek2(), Some(Tok::Sym("(")))
        {
            let callee = self.expect_ident()?;
            self.expect_sym("(")?;
            let args = self.parse_expr_list_until(")")?;
            self.expect_sym(")")?;
            self.expect_sym(";")?;
            return Ok(StmtKind::CallAssign { targets, callee, args });
        }
        let mut exprs = vec![self.parse_expr()?];
        while self.eat_sym(",") {
            exprs.push(self.parse_expr()?);
        }
        self.expect_sym(";")?;
        Ok(StmtKind::Assign { targets, exprs })
    }

    fn parse_expr_list_until(&mut self, closer: &str) -> Result<Vec<Expr>, ParseError> {
        let mut out = Vec::new();
        if self.is_sym(closer) {
            return Ok(out);
        }
        out.push(self.parse_expr()?);
        while self.eat_sym(",") {
            out.push(self.parse_expr()?);
        }
        Ok(out)
    }

    /// Precedence (loose → tight): `|`, `&`, `=`/`!=`, `!`.
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat_sym("|") {
            let rhs = self.parse_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_cmp()?;
        while self.eat_sym("&") {
            let rhs = self.parse_cmp()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_unary()?;
        if self.eat_sym("=") {
            let rhs = self.parse_unary()?;
            return Ok(Expr::Eq(Box::new(lhs), Box::new(rhs)));
        }
        if self.eat_sym("!=") {
            let rhs = self.parse_unary()?;
            return Ok(Expr::Ne(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        self.descend()?;
        let expr = self.parse_unary_at_depth();
        self.depth -= 1;
        expr
    }

    fn parse_unary_at_depth(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym("!") {
            let e = self.parse_unary()?;
            return Ok(Expr::Not(Box::new(e)));
        }
        if self.eat_sym("(") {
            let e = self.parse_expr()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        if self.eat_sym("*") {
            return Ok(Expr::Nondet);
        }
        if self.eat_kw("schoose") {
            self.expect_sym("[")?;
            let pos = self.parse_expr()?;
            self.expect_sym(",")?;
            let neg = self.parse_expr()?;
            self.expect_sym("]")?;
            return Ok(Expr::Schoose(Box::new(pos), Box::new(neg)));
        }
        match self.peek() {
            Some(Tok::Ident(s)) if s == "T" => {
                self.pos += 1;
                Ok(Expr::Const(true))
            }
            Some(Tok::Ident(s)) if s == "F" => {
                self.pos += 1;
                Ok(Expr::Const(false))
            }
            Some(Tok::Ident(s)) if !KEYWORDS.contains(&s.as_str()) => {
                let v = s.clone();
                self.pos += 1;
                Ok(Expr::Var(v))
            }
            _ => Err(self.err("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
        decl g, h;

        main() begin
          decl x, y;
          x := T;
          x, y := f(x, *);
          if (x & !g) then
            ERR: skip;
          else
            y := schoose [x, g];
          fi;
          while (*) do
            call f(T, F);
          od;
          assert (g | !h);
          assume (x);
          dead x, y;
          goto ERR;
        end

        f(a, b) returns 2 begin
          decl c;
          c := a != b;
          return a | b, c = a;
        end
    "#;

    #[test]
    fn parse_full_example() {
        let p = parse_program(EXAMPLE).unwrap();
        assert_eq!(p.globals, vec!["g", "h"]);
        assert_eq!(p.procs.len(), 2);
        let f = p.proc("f").unwrap();
        assert_eq!(f.params, vec!["a", "b"]);
        assert_eq!(f.returns, 2);
        assert_eq!(f.locals, vec!["c"]);
        let main = p.proc("main").unwrap();
        // labeled statement inside if
        let StmtKind::If { then_branch, .. } = &main.body[2].kind else {
            panic!("expected if");
        };
        assert_eq!(then_branch[0].label.as_deref(), Some("ERR"));
    }

    #[test]
    fn round_trip() {
        let p1 = parse_program(EXAMPLE).unwrap();
        let printed = p1.to_string();
        let p2 = parse_program(&printed).expect("pretty output must re-parse");
        assert_eq!(
            p1.without_lines(),
            p2.without_lines(),
            "parse ∘ print is the identity on the AST (modulo line metadata)"
        );
    }

    #[test]
    fn statements_carry_source_lines() {
        let p = parse_program(EXAMPLE).unwrap();
        let main = p.proc("main").unwrap();
        // EXAMPLE is a raw string: line 1 is the empty line after r#".
        let lines: Vec<Option<u32>> = main.body.iter().map(|s| s.line).collect();
        assert!(lines.iter().all(Option::is_some), "every parsed stmt has a line");
        assert!(lines.windows(2).all(|w| w[0] < w[1]), "lines ascend: {lines:?}");
    }

    #[test]
    fn parse_concurrent_program() {
        let src = r#"
            shared s1, s2;
            thread
              main() begin
                s1 := T;
              end
            endthread
            thread
              decl l;
              main() begin
                l := s1;
              end
            endthread
        "#;
        let c = parse_concurrent(src).unwrap();
        assert_eq!(c.shared, vec!["s1", "s2"]);
        assert_eq!(c.threads.len(), 2);
        assert_eq!(c.threads[1].globals, vec!["l"]);
    }

    #[test]
    fn concurrent_round_trip() {
        let src = r#"
            shared s;
            thread
              main() begin
                s := !s;
              end
            endthread
        "#;
        let c1 = parse_concurrent(src).unwrap();
        let c2 = parse_concurrent(&c1.to_string()).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn error_position() {
        let err = parse_program("main() begin x := ; end").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expression"));
    }

    #[test]
    fn empty_return_and_args() {
        let p = parse_program(
            r#"
            main() begin
              call f();
              return;
            end
            f() begin
              skip;
            end
            "#,
        )
        .unwrap();
        assert_eq!(p.procs.len(), 2);
    }

    #[test]
    fn keyword_cannot_be_variable() {
        assert!(parse_program("main() begin decl while; end").is_err());
    }

    #[test]
    fn label_vs_assign_disambiguation() {
        let p = parse_program(
            r#"
            main() begin
              decl x;
              L1: x := T;
              x := F;
            end
            "#,
        )
        .unwrap();
        assert_eq!(p.procs[0].body[0].label.as_deref(), Some("L1"));
        assert_eq!(p.procs[0].body[1].label, None);
    }

    #[test]
    fn duplicate_procedure_is_a_parse_error_with_position() {
        let err = parse_program("main() begin skip; end\nf() begin skip; end\nf() begin skip; end")
            .unwrap_err();
        assert!(err.message.contains("procedure `f` defined twice"), "{err}");
        assert!(err.message.contains("line 2"), "{err}");
        assert_eq!(err.line, 3);
        assert_eq!(err.col, 1);
    }

    #[test]
    fn duplicate_label_is_a_parse_error_with_position() {
        let err = parse_program("main() begin\nL: skip;\nL: skip;\nend").unwrap_err();
        assert!(err.message.contains("label `L` declared twice"), "{err}");
        assert!(err.message.contains("line 2"), "{err}");
        assert_eq!(err.line, 3);
        assert_eq!(err.col, 1);
    }

    #[test]
    fn duplicate_label_across_procedures_is_rejected() {
        // Labels are one program-wide namespace (reachability targets).
        let err = parse_program("main() begin L: skip; end\nf() begin L: skip; end").unwrap_err();
        assert!(err.message.contains("label `L` declared twice"), "{err}");
    }

    #[test]
    fn duplicates_across_threads_are_fine() {
        // Each thread is its own namespace; merging prefixes names.
        let c = parse_concurrent(
            r#"
            shared g;
            thread
              main() begin HIT: skip; end
              f() begin skip; end
            endthread
            thread
              main() begin HIT: skip; end
              f() begin skip; end
            endthread
            "#,
        )
        .unwrap();
        assert_eq!(c.threads.len(), 2);
    }
}
