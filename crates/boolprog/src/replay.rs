//! Concrete trace replay: the validation oracle for extracted witnesses.
//!
//! A witness extractor (see the `getafix-witness` crate) turns solved
//! summary BDDs into a claimed error path. This module *re-executes* that
//! path in the concrete small-step semantics of §2 — stack and all — and
//! accepts it only if every step is a legal transition and the final pc is
//! a target. Replay is deliberately independent of every symbolic engine:
//! it shares no BDD code, so a trace that replays is evidence against bugs
//! in the solver, the encoding *and* the extractor at once.
//!
//! Nondeterminism (`*`, `schoose`) means a program state can have several
//! successors; a [`ReplayStep`] therefore records the chosen *post-state*
//! (pc plus the resulting global/local valuations), and replay checks the
//! choice is within the expression's value set rather than recomputing it.

use crate::bits::{admits, frame_mask, Bits};
use crate::cfg::{Cfg, Edge, Pc, ProcId, VarRef};
use std::fmt;

/// One step of a concrete interprocedural trace, recording the post-state.
///
/// `globals` is the shared valuation after the step; `locals` is the
/// valuation of the *then-current* frame after the step (the callee frame
/// for a `Call`, the caller frame for a `Return`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayStep {
    /// An intra-procedural edge to `to`.
    Internal {
        /// Destination pc.
        to: Pc,
        /// Globals after the parallel assignment.
        globals: Bits,
        /// Current-frame locals after the parallel assignment.
        locals: Bits,
    },
    /// A call: control enters the callee at `entry`.
    Call {
        /// The callee's entry pc.
        entry: Pc,
        /// Globals at entry (calls do not change globals).
        globals: Bits,
        /// The callee frame's locals (parameters from the arguments, the
        /// rest `false`).
        locals: Bits,
    },
    /// A return from the current frame's exit point back to `ret_to`.
    Return {
        /// The caller pc control resumes at.
        ret_to: Pc,
        /// Globals after return-value assignment.
        globals: Bits,
        /// Caller locals after return-value assignment.
        locals: Bits,
    },
}

/// Why a replay was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// Index of the offending step (`steps.len()` for end-of-trace
    /// failures such as "final pc is not a target").
    pub step: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "replay step {}: {}", self.step, self.message)
    }
}

impl std::error::Error for ReplayError {}

#[derive(Debug, Clone)]
struct Frame {
    proc: ProcId,
    pc: Pc,
    locals: Bits,
    /// Return-value targets and resume pc, captured at the call.
    on_return: Option<(Vec<VarRef>, Pc)>,
}

fn bit(bits: Bits, i: usize) -> bool {
    (bits >> i) & 1 == 1
}

/// Replays `steps` from the initial configuration (main entry, all
/// variables `false`) and checks that the final pc is in `targets`.
///
/// # Errors
///
/// Returns a [`ReplayError`] naming the first step that is not a legal
/// concrete transition — no matching CFG edge, an unsatisfiable guard, a
/// chosen value outside an expression's value set, a clobbered frame
/// variable — or an end-of-trace failure (final pc not a target). Programs
/// with more than 64 globals or locals per frame are rejected up front.
pub fn replay(cfg: &Cfg, steps: &[ReplayStep], targets: &[Pc]) -> Result<(), ReplayError> {
    let fail = |step: usize, message: String| Err(ReplayError { step, message });
    if cfg.globals.len() > 64 {
        return fail(0, format!("{} globals exceed the 64-bit replay frame", cfg.globals.len()));
    }
    for p in &cfg.procs {
        if p.n_locals() > 64 {
            return fail(0, format!("procedure `{}` has more than 64 locals", p.name));
        }
    }

    let main = &cfg.procs[cfg.main];
    let mut globals: Bits = 0;
    let mut stack: Vec<Frame> =
        vec![Frame { proc: cfg.main, pc: main.entry, locals: 0, on_return: None }];

    for (i, step) in steps.iter().enumerate() {
        let frame = stack.last().expect("non-empty stack");
        let proc = &cfg.procs[frame.proc];
        let n_globals = cfg.globals.len();
        match *step {
            ReplayStep::Internal { to, globals: g2, locals: l2 } => {
                let edges = proc.edges.get(&frame.pc).map(Vec::as_slice).unwrap_or(&[]);
                let mut matched = false;
                'edges: for e in edges {
                    let Edge::Internal { to: eto, guard, assigns } = e else { continue };
                    if *eto != to || !admits(guard, globals, frame.locals, true) {
                        continue;
                    }
                    // Assigned bits must be admissible, unassigned bits
                    // unchanged.
                    let mut assigned_l: u64 = 0;
                    let mut assigned_g: u64 = 0;
                    for (tv, expr) in assigns {
                        let new = match tv {
                            VarRef::Local(j) => {
                                assigned_l |= 1 << j;
                                bit(l2, *j)
                            }
                            VarRef::Global(j) => {
                                assigned_g |= 1 << j;
                                bit(g2, *j)
                            }
                        };
                        if !admits(expr, globals, frame.locals, new) {
                            continue 'edges;
                        }
                    }
                    let lmask = frame_mask(proc.n_locals()) & !assigned_l;
                    let gmask = frame_mask(n_globals) & !assigned_g;
                    if (l2 & lmask) != (frame.locals & lmask)
                        || (g2 & gmask) != (globals & gmask)
                        || l2 & !frame_mask(proc.n_locals()) != 0
                        || g2 & !frame_mask(n_globals) != 0
                    {
                        continue;
                    }
                    matched = true;
                    break;
                }
                if !matched {
                    return fail(
                        i,
                        format!(
                            "no internal edge {} -> {to} admits globals={g2:b} locals={l2:b}",
                            frame.pc
                        ),
                    );
                }
                globals = g2;
                let top = stack.last_mut().expect("non-empty stack");
                top.pc = to;
                top.locals = l2;
            }
            ReplayStep::Call { entry, globals: g2, locals: l2 } => {
                let edges = proc.edges.get(&frame.pc).map(Vec::as_slice).unwrap_or(&[]);
                let mut pushed = None;
                'calls: for e in edges {
                    let Edge::Call { callee, args, rets, ret_to } = e else { continue };
                    let q = &cfg.procs[*callee];
                    if q.entry != entry || g2 != globals {
                        continue;
                    }
                    for (j, arg) in args.iter().enumerate() {
                        if !admits(arg, globals, frame.locals, bit(l2, j)) {
                            continue 'calls;
                        }
                    }
                    // Non-parameter callee locals start false.
                    if l2 & !frame_mask(args.len()) != 0 {
                        continue;
                    }
                    pushed = Some(Frame {
                        proc: *callee,
                        pc: entry,
                        locals: l2,
                        on_return: Some((rets.clone(), *ret_to)),
                    });
                    break;
                }
                let Some(new_frame) = pushed else {
                    return fail(
                        i,
                        format!("no call edge at {} enters {entry} with locals={l2:b}", frame.pc),
                    );
                };
                stack.push(new_frame);
            }
            ReplayStep::Return { ret_to, globals: g2, locals: l2 } => {
                let Some((rets, saved_ret_to)) = frame.on_return.clone() else {
                    return fail(i, "return from the initial frame".into());
                };
                if saved_ret_to != ret_to {
                    return fail(
                        i,
                        format!("return resumes at {ret_to}, the call expected {saved_ret_to}"),
                    );
                }
                let Some(exit) = proc.exits.iter().find(|e| e.pc == frame.pc) else {
                    return fail(i, format!("pc {} is not an exit of `{}`", frame.pc, proc.name));
                };
                let exit_globals = globals;
                let exit_locals = frame.locals;
                let caller = stack[stack.len() - 2].clone();
                let caller_proc = &cfg.procs[caller.proc];
                let mut assigned_l: u64 = 0;
                let mut assigned_g: u64 = 0;
                for (target, expr) in rets.iter().zip(&exit.ret_exprs) {
                    let new = match target {
                        VarRef::Local(j) => {
                            assigned_l |= 1 << j;
                            bit(l2, *j)
                        }
                        VarRef::Global(j) => {
                            assigned_g |= 1 << j;
                            bit(g2, *j)
                        }
                    };
                    if !admits(expr, exit_globals, exit_locals, new) {
                        return fail(
                            i,
                            format!("return value {new} not admitted by the exit expression"),
                        );
                    }
                }
                let lmask = frame_mask(caller_proc.n_locals()) & !assigned_l;
                let gmask = frame_mask(n_globals) & !assigned_g;
                if (l2 & lmask) != (caller.locals & lmask) {
                    return fail(i, "caller locals clobbered across the call".into());
                }
                if (g2 & gmask) != (exit_globals & gmask) {
                    return fail(i, "globals changed by the return itself".into());
                }
                if l2 & !frame_mask(caller_proc.n_locals()) != 0 || g2 & !frame_mask(n_globals) != 0
                {
                    return fail(i, "out-of-frame bits set".into());
                }
                stack.pop();
                globals = g2;
                let top = stack.last_mut().expect("caller frame");
                top.pc = ret_to;
                top.locals = l2;
            }
        }
    }

    let final_pc = stack.last().expect("non-empty stack").pc;
    if targets.contains(&final_pc) {
        Ok(())
    } else {
        Err(ReplayError {
            step: steps.len(),
            message: format!("final pc {final_pc} is not a target"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn build(src: &str) -> Cfg {
        Cfg::build(&parse_program(src).unwrap()).unwrap()
    }

    /// A hand-written trace through a call with a return value.
    #[test]
    fn call_return_trace_replays() {
        let cfg = build(
            r#"
            decl g;
            main() begin
              decl x;
              x := id(T);
              if (x) then HIT: skip; fi;
            end
            id(a) returns 1 begin
              return a;
            end
            "#,
        );
        let target = cfg.label("HIT").unwrap();
        let main = &cfg.procs[cfg.main];
        let id = cfg.proc_by_name("id").unwrap();
        let Edge::Call { ret_to, .. } = &main.edges[&main.entry][0] else { panic!("call edge") };
        let ret_exit = id.exits[0].pc;
        let _ = ret_exit;
        let steps = vec![
            // call id(T): callee locals a = T.
            ReplayStep::Call { entry: id.entry, globals: 0, locals: 1 },
            // return a (= T) into x.
            ReplayStep::Return { ret_to: *ret_to, globals: 0, locals: 1 },
            // if (x) then -> HIT
            ReplayStep::Internal { to: target, globals: 0, locals: 1 },
        ];
        replay(&cfg, &steps, &[target]).unwrap();
    }

    #[test]
    fn wrong_choice_is_rejected() {
        let cfg = build(
            r#"
            decl g;
            main() begin
              g := F;
              if (g) then HIT: skip; fi;
            end
            "#,
        );
        let target = cfg.label("HIT").unwrap();
        let main = &cfg.procs[cfg.main];
        let Edge::Internal { to, .. } = &main.edges[&main.entry][0] else { panic!() };
        // Claim g := F produced g = T: not admitted.
        let steps = vec![ReplayStep::Internal { to: *to, globals: 1, locals: 0 }];
        let err = replay(&cfg, &steps, &[target]).unwrap_err();
        assert_eq!(err.step, 0, "{err}");
    }

    #[test]
    fn missing_target_is_rejected() {
        let cfg = build(
            r#"
            main() begin
              HIT: skip;
            end
            "#,
        );
        let target = cfg.label("HIT").unwrap();
        // Empty trace: initial pc *is* HIT (first statement).
        assert_eq!(cfg.procs[cfg.main].entry, target);
        replay(&cfg, &[], &[target]).unwrap();
        // But not some other pc.
        let err = replay(&cfg, &[], &[target + 1]).unwrap_err();
        assert!(err.message.contains("not a target"), "{err}");
    }

    #[test]
    fn caller_locals_must_be_preserved() {
        let cfg = build(
            r#"
            main() begin
              decl x;
              x := T;
              call noop();
              HIT: skip;
            end
            noop() begin
              skip;
            end
            "#,
        );
        let target = cfg.label("HIT").unwrap();
        let main = &cfg.procs[cfg.main];
        let noop = cfg.proc_by_name("noop").unwrap();
        // Find the pcs: entry --x:=T--> call_pc --call--> ...
        let Edge::Internal { to: call_pc, .. } = &main.edges[&main.entry][0] else { panic!() };
        let Edge::Call { ret_to, .. } = &main.edges[call_pc][0] else { panic!() };
        let noop_exit = noop.exits[0].pc;
        let good = vec![
            ReplayStep::Internal { to: *call_pc, globals: 0, locals: 1 },
            ReplayStep::Call { entry: noop.entry, globals: 0, locals: 0 },
            // noop entry -> skip -> exit
            ReplayStep::Internal {
                to: match &noop.edges[&noop.entry][0] {
                    Edge::Internal { to, .. } => *to,
                    _ => panic!(),
                },
                globals: 0,
                locals: 0,
            },
            ReplayStep::Return { ret_to: *ret_to, globals: 0, locals: 1 },
        ];
        let _ = noop_exit;
        replay(&cfg, &good, &[target]).unwrap();
        // Same trace, but the return claims x flipped to F.
        let mut bad = good;
        let last = bad.len() - 1;
        bad[last] = ReplayStep::Return { ret_to: *ret_to, globals: 0, locals: 0 };
        let err = replay(&cfg, &bad, &[target]).unwrap_err();
        assert!(err.message.contains("clobbered"), "{err}");
    }
}
