//! Packed-valuation helpers shared by every concrete engine (the explicit
//! oracles, the trace replayer, the witness extractor): one definition of
//! how a [`VarRef`] reads from / writes into `(globals, locals)` bit
//! vectors, and the nondeterministic-choice enumeration over
//! [`LExpr::value_set`]s.

use crate::cfg::{LExpr, VarRef};

/// Packed valuation of up to 64 Boolean variables.
pub type Bits = u64;

/// Reads variable `v` from the packed valuations.
pub fn read_var(globals: Bits, locals: Bits, v: VarRef) -> bool {
    match v {
        VarRef::Global(i) => (globals >> i) & 1 == 1,
        VarRef::Local(i) => (locals >> i) & 1 == 1,
    }
}

/// Writes `value` into variable `v` of the packed valuations.
pub fn write_var(globals: &mut Bits, locals: &mut Bits, v: VarRef, value: bool) {
    let (bits, i) = match v {
        VarRef::Global(i) => (globals, i),
        VarRef::Local(i) => (locals, i),
    };
    if value {
        *bits |= 1 << i;
    } else {
        *bits &= !(1 << i);
    }
}

/// The low `n` bits set — the legal-bit mask of an `n`-variable frame.
pub fn frame_mask(n: usize) -> Bits {
    if n >= 64 {
        Bits::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Is `value` a possible outcome of `e` in the given state?
pub fn admits(e: &LExpr, globals: Bits, locals: Bits, value: bool) -> bool {
    let (can_t, can_f) = e.value_set(&|v| read_var(globals, locals, v));
    if value {
        can_t
    } else {
        can_f
    }
}

/// Cartesian product of per-slot `(can_true, can_false)` value sets: every
/// choice vector the slots admit jointly.
pub fn enumerate_choices(sets: &[(bool, bool)]) -> Vec<Vec<bool>> {
    let mut out: Vec<Vec<bool>> = vec![Vec::new()];
    for &(can_true, can_false) in sets {
        let mut next = Vec::new();
        for prefix in &out {
            if can_true {
                let mut p = prefix.clone();
                p.push(true);
                next.push(p);
            }
            if can_false {
                let mut p = prefix.clone();
                p.push(false);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

/// All post-valuations of a parallel assignment, each right-hand side
/// ranging over its value set independently.
pub fn next_states(globals: Bits, locals: Bits, assigns: &[(VarRef, LExpr)]) -> Vec<(Bits, Bits)> {
    let sets: Vec<(bool, bool)> =
        assigns.iter().map(|(_, e)| e.value_set(&|v| read_var(globals, locals, v))).collect();
    enumerate_choices(&sets)
        .into_iter()
        .map(|vals| {
            let (mut g2, mut l2) = (globals, locals);
            for ((t, _), val) in assigns.iter().zip(vals) {
                write_var(&mut g2, &mut l2, *t, val);
            }
            (g2, l2)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let (mut g, mut l) = (0, 0);
        write_var(&mut g, &mut l, VarRef::Global(3), true);
        write_var(&mut g, &mut l, VarRef::Local(1), true);
        assert!(read_var(g, l, VarRef::Global(3)));
        assert!(read_var(g, l, VarRef::Local(1)));
        assert!(!read_var(g, l, VarRef::Global(0)));
        write_var(&mut g, &mut l, VarRef::Global(3), false);
        assert_eq!(g, 0);
        assert_eq!(l, 0b10);
    }

    #[test]
    fn frame_mask_widths() {
        assert_eq!(frame_mask(0), 0);
        assert_eq!(frame_mask(3), 0b111);
        assert_eq!(frame_mask(64), u64::MAX);
    }

    #[test]
    fn enumerate_choices_product() {
        // (T|F) × (T only) × (F only) = 2 vectors.
        let out = enumerate_choices(&[(true, true), (true, false), (false, true)]);
        assert_eq!(out.len(), 2);
        for v in out {
            assert!(v[1] && !v[2]);
        }
    }
}
