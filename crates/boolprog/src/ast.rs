//! Abstract syntax of recursive Boolean programs (§2 of the paper), plus the
//! extensions the benchmark suites need: `assert`, `assume`, `goto`/labels,
//! `dead` (Terminator) and `schoose` (Bebop).

use std::fmt;

/// A Boolean expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// `T` or `F`.
    Const(bool),
    /// `*` — nondeterministically true or false.
    Nondet,
    /// A variable reference.
    Var(String),
    /// `!e`
    Not(Box<Expr>),
    /// `e & e`
    And(Box<Expr>, Box<Expr>),
    /// `e | e`
    Or(Box<Expr>, Box<Expr>),
    /// `e = e` (biconditional on Booleans).
    Eq(Box<Expr>, Box<Expr>),
    /// `e != e` (exclusive or).
    Ne(Box<Expr>, Box<Expr>),
    /// `schoose [pos, neg]` — Bebop's constrained choice: evaluates to `T`
    /// when `pos` holds, to `F` when `neg` (and not `pos`) holds, and
    /// nondeterministically otherwise.
    Schoose(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// `!e` with double-negation collapse.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        match e {
            Expr::Not(inner) => *inner,
            Expr::Const(b) => Expr::Const(!b),
            other => Expr::Not(Box::new(other)),
        }
    }

    /// `a & b` with constant folding.
    pub fn and(a: Expr, b: Expr) -> Expr {
        match (a, b) {
            (Expr::Const(false), _) | (_, Expr::Const(false)) => Expr::Const(false),
            (Expr::Const(true), x) | (x, Expr::Const(true)) => x,
            (a, b) => Expr::And(Box::new(a), Box::new(b)),
        }
    }

    /// `a | b` with constant folding.
    pub fn or(a: Expr, b: Expr) -> Expr {
        match (a, b) {
            (Expr::Const(true), _) | (_, Expr::Const(true)) => Expr::Const(true),
            (Expr::Const(false), x) | (x, Expr::Const(false)) => x,
            (a, b) => Expr::Or(Box::new(a), Box::new(b)),
        }
    }

    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Does the expression contain a nondeterministic choice (`*` or
    /// `schoose`)?
    pub fn has_choice(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Var(_) => false,
            Expr::Nondet => true,
            Expr::Schoose(..) => true,
            Expr::Not(e) => e.has_choice(),
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Eq(a, b) | Expr::Ne(a, b) => {
                a.has_choice() || b.has_choice()
            }
        }
    }

    /// All variable names referenced, in first-occurrence order.
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Const(_) | Expr::Nondet => {}
            Expr::Var(v) => {
                if !out.contains(&v.as_str()) {
                    out.push(v);
                }
            }
            Expr::Not(e) => e.collect_vars(out),
            Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Eq(a, b)
            | Expr::Ne(a, b)
            | Expr::Schoose(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(true) => write!(f, "T"),
            Expr::Const(false) => write!(f, "F"),
            Expr::Nondet => write!(f, "*"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Not(e) => write!(f, "!{}", Paren(e)),
            Expr::And(a, b) => write!(f, "{} & {}", Paren(a), Paren(b)),
            Expr::Or(a, b) => write!(f, "{} | {}", Paren(a), Paren(b)),
            Expr::Eq(a, b) => write!(f, "{} = {}", Paren(a), Paren(b)),
            Expr::Ne(a, b) => write!(f, "{} != {}", Paren(a), Paren(b)),
            Expr::Schoose(a, b) => write!(f, "schoose [{a}, {b}]"),
        }
    }
}

/// Helper that parenthesizes compound sub-expressions.
struct Paren<'a>(&'a Expr);

impl fmt::Display for Paren<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Expr::Const(_) | Expr::Nondet | Expr::Var(_) | Expr::Not(_) => write!(f, "{}", self.0),
            compound => write!(f, "({compound})"),
        }
    }
}

/// A statement, optionally labeled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Optional label (`L: stmt`). Reachability targets are labels.
    pub label: Option<String>,
    /// The statement proper.
    pub kind: StmtKind,
    /// 1-based source line of the statement, when parsed from text
    /// (`None` for programmatically built ASTs). Witness traces use it to
    /// point back into the source.
    pub line: Option<u32>,
}

impl Stmt {
    /// An unlabeled statement.
    pub fn new(kind: StmtKind) -> Stmt {
        Stmt { label: None, kind, line: None }
    }

    /// A labeled statement.
    pub fn labeled(label: impl Into<String>, kind: StmtKind) -> Stmt {
        Stmt { label: Some(label.into()), kind, line: None }
    }

    /// The same statement pinned to a source line.
    pub fn at_line(mut self, line: u32) -> Stmt {
        self.line = Some(line);
        self
    }
}

/// Statement kinds (paper grammar plus benchmark extensions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `skip`
    Skip,
    /// Parallel assignment `x₁, …, xₘ := e₁, …, eₘ`.
    Assign { targets: Vec<String>, exprs: Vec<Expr> },
    /// Call whose return values are assigned: `x₁, …, xₖ := f(e₁, …, eₕ)`.
    CallAssign { targets: Vec<String>, callee: String, args: Vec<Expr> },
    /// `call f(e₁, …, eₕ)` — a call with no return values.
    Call { callee: String, args: Vec<Expr> },
    /// `return e₁, …, eₖ`
    Return(Vec<Expr>),
    /// `if (e) then … else … fi`
    If { cond: Expr, then_branch: Vec<Stmt>, else_branch: Vec<Stmt> },
    /// `while (e) do … od`
    While { cond: Expr, body: Vec<Stmt> },
    /// `assert (e)` — jumps to the distinguished error sink when `e` fails.
    Assert(Expr),
    /// `assume (e)` — blocks executions where `e` fails.
    Assume(Expr),
    /// `goto L`
    Goto(String),
    /// `dead x₁, …, xₙ` — the Terminator marker: the variables are no
    /// longer used; semantically a havoc (they take arbitrary values).
    Dead(Vec<String>),
}

/// A procedure `f^{h,k}` with `h` parameters and `k` return values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proc {
    /// Procedure name.
    pub name: String,
    /// Formal parameters (these are local variables too, per §2).
    pub params: Vec<String>,
    /// Number of values returned by every `return` in the body.
    pub returns: usize,
    /// Local variable declarations (excluding the parameters).
    pub locals: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A sequential recursive Boolean program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Global variable declarations.
    pub globals: Vec<String>,
    /// Procedures; execution starts at `main`.
    pub procs: Vec<Proc>,
}

impl Program {
    /// Looks up a procedure by name.
    pub fn proc(&self, name: &str) -> Option<&Proc> {
        self.procs.iter().find(|p| p.name == name)
    }

    /// The same program with all source-line metadata dropped — the
    /// normal form for comparing a parsed AST against a programmatically
    /// built or pretty-print-round-tripped one (the printer re-lays-out
    /// the program, so positions legitimately differ).
    pub fn without_lines(mut self) -> Program {
        fn strip(stmts: &mut [Stmt]) {
            for s in stmts {
                s.line = None;
                match &mut s.kind {
                    StmtKind::If { then_branch, else_branch, .. } => {
                        strip(then_branch);
                        strip(else_branch);
                    }
                    StmtKind::While { body, .. } => strip(body),
                    _ => {}
                }
            }
        }
        for proc in &mut self.procs {
            strip(&mut proc.body);
        }
        self
    }

    /// Non-blank source lines of the pretty-printed program — the paper's
    /// `LOC` metric for Figure 2.
    pub fn loc(&self) -> usize {
        self.to_string().lines().filter(|l| !l.trim().is_empty()).count()
    }

    /// Counts of the Figure 2 metadata columns: (max returns, max params,
    /// globals, total locals, max locals per procedure, procedures).
    pub fn metadata(&self) -> ProgramMetadata {
        ProgramMetadata {
            max_returns: self.procs.iter().map(|p| p.returns).max().unwrap_or(0),
            max_params: self.procs.iter().map(|p| p.params.len()).max().unwrap_or(0),
            globals: self.globals.len(),
            total_locals: self.procs.iter().map(|p| p.params.len() + p.locals.len()).sum(),
            max_locals: self
                .procs
                .iter()
                .map(|p| p.params.len() + p.locals.len())
                .max()
                .unwrap_or(0),
            procedures: self.procs.len(),
        }
    }
}

/// The program-shape columns reported in Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramMetadata {
    /// Maximal number of return values of any procedure.
    pub max_returns: usize,
    /// Maximal number of parameters of any procedure.
    pub max_params: usize,
    /// Number of global variables.
    pub globals: usize,
    /// Total number of local variables (including parameters).
    pub total_locals: usize,
    /// Maximal locals (including parameters) in any one procedure.
    pub max_locals: usize,
    /// Number of procedures.
    pub procedures: usize,
}

/// A concurrent Boolean program (§5): shared globals plus `n` threads, each
/// a sequential program. Thread globals are private to the thread; shared
/// variables are visible to every thread.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConcProgram {
    /// Variables shared by all threads.
    pub shared: Vec<String>,
    /// The component programs.
    pub threads: Vec<Program>,
}

// ---------------------------------------------------------------------------
// Pretty-printing (round-trips with the parser).
// ---------------------------------------------------------------------------

fn write_stmts(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], depth: usize) -> fmt::Result {
    for s in stmts {
        write_stmt(f, s, depth)?;
    }
    Ok(())
}

fn pad(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        write!(f, "  ")?;
    }
    Ok(())
}

fn write_exprs(f: &mut fmt::Formatter<'_>, exprs: &[Expr]) -> fmt::Result {
    for (i, e) in exprs.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{e}")?;
    }
    Ok(())
}

fn write_stmt(f: &mut fmt::Formatter<'_>, s: &Stmt, depth: usize) -> fmt::Result {
    pad(f, depth)?;
    if let Some(l) = &s.label {
        write!(f, "{l}: ")?;
    }
    match &s.kind {
        StmtKind::Skip => writeln!(f, "skip;"),
        StmtKind::Assign { targets, exprs } => {
            write!(f, "{}", targets.join(", "))?;
            write!(f, " := ")?;
            write_exprs(f, exprs)?;
            writeln!(f, ";")
        }
        StmtKind::CallAssign { targets, callee, args } => {
            write!(f, "{}", targets.join(", "))?;
            write!(f, " := {callee}(")?;
            write_exprs(f, args)?;
            writeln!(f, ");")
        }
        StmtKind::Call { callee, args } => {
            write!(f, "call {callee}(")?;
            write_exprs(f, args)?;
            writeln!(f, ");")
        }
        StmtKind::Return(exprs) => {
            write!(f, "return")?;
            if !exprs.is_empty() {
                write!(f, " ")?;
                write_exprs(f, exprs)?;
            }
            writeln!(f, ";")
        }
        StmtKind::If { cond, then_branch, else_branch } => {
            writeln!(f, "if ({cond}) then")?;
            write_stmts(f, then_branch, depth + 1)?;
            if !else_branch.is_empty() {
                pad(f, depth)?;
                writeln!(f, "else")?;
                write_stmts(f, else_branch, depth + 1)?;
            }
            pad(f, depth)?;
            writeln!(f, "fi;")
        }
        StmtKind::While { cond, body } => {
            writeln!(f, "while ({cond}) do")?;
            write_stmts(f, body, depth + 1)?;
            pad(f, depth)?;
            writeln!(f, "od;")
        }
        StmtKind::Assert(e) => writeln!(f, "assert ({e});"),
        StmtKind::Assume(e) => writeln!(f, "assume ({e});"),
        StmtKind::Goto(l) => writeln!(f, "goto {l};"),
        StmtKind::Dead(vars) => writeln!(f, "dead {};", vars.join(", ")),
    }
}

impl fmt::Display for Proc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.params.join(", "))?;
        if self.returns > 0 {
            write!(f, " returns {}", self.returns)?;
        }
        writeln!(f, " begin")?;
        if !self.locals.is_empty() {
            writeln!(f, "  decl {};", self.locals.join(", "))?;
        }
        write_stmts(f, &self.body, 1)?;
        writeln!(f, "end")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.globals.is_empty() {
            writeln!(f, "decl {};", self.globals.join(", "))?;
            writeln!(f)?;
        }
        for (i, p) in self.procs.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for ConcProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.shared.is_empty() {
            writeln!(f, "shared {};", self.shared.join(", "))?;
            writeln!(f)?;
        }
        for t in &self.threads {
            writeln!(f, "thread")?;
            write!(f, "{t}")?;
            writeln!(f, "endthread")?;
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders_fold() {
        assert_eq!(Expr::and(Expr::Const(false), Expr::var("x")), Expr::Const(false));
        assert_eq!(Expr::or(Expr::Const(true), Expr::var("x")), Expr::Const(true));
        assert_eq!(Expr::and(Expr::Const(true), Expr::var("x")), Expr::var("x"));
        assert_eq!(Expr::not(Expr::not(Expr::var("x"))), Expr::var("x"));
    }

    #[test]
    fn expr_vars_and_choice() {
        let e = Expr::and(
            Expr::var("a"),
            Expr::or(Expr::var("b"), Expr::and(Expr::var("a"), Expr::Nondet)),
        );
        assert_eq!(e.vars(), vec!["a", "b"]);
        assert!(e.has_choice());
        assert!(!Expr::var("a").has_choice());
        let s = Expr::Schoose(Box::new(Expr::var("p")), Box::new(Expr::var("q")));
        assert!(s.has_choice());
    }

    #[test]
    fn display_expr() {
        let e = Expr::and(Expr::var("a"), Expr::or(Expr::var("b"), Expr::Const(true)));
        // or folds to T, and drops it.
        assert_eq!(e.to_string(), "a");
        let e2 = Expr::And(
            Box::new(Expr::Var("a".into())),
            Box::new(Expr::Or(Box::new(Expr::Var("b".into())), Box::new(Expr::Nondet))),
        );
        assert_eq!(e2.to_string(), "a & (b | *)");
    }

    #[test]
    fn program_metadata() {
        let p = Program {
            globals: vec!["g".into()],
            procs: vec![
                Proc {
                    name: "main".into(),
                    params: vec![],
                    returns: 0,
                    locals: vec!["x".into(), "y".into()],
                    body: vec![Stmt::new(StmtKind::Skip)],
                },
                Proc {
                    name: "f".into(),
                    params: vec!["a".into(), "b".into()],
                    returns: 1,
                    locals: vec!["c".into()],
                    body: vec![Stmt::new(StmtKind::Return(vec![Expr::var("a")]))],
                },
            ],
        };
        let md = p.metadata();
        assert_eq!(md.max_returns, 1);
        assert_eq!(md.max_params, 2);
        assert_eq!(md.globals, 1);
        assert_eq!(md.total_locals, 5);
        assert_eq!(md.max_locals, 3);
        assert_eq!(md.procedures, 2);
        assert!(p.loc() > 0);
    }
}
