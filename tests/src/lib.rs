//! Cross-crate integration-test package (tests live in `tests/tests/`).
