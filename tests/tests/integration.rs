//! Workspace-wide integration tests: every engine (four formula-driven
//! algorithms, three hand-coded baselines, the explicit oracle) on every
//! workload family, all agreeing.

use getafix_bebop::bebop_reachable;
use getafix_boolprog::{explicit_reachable, Cfg};
use getafix_core::{check_reachability, Algorithm};
use getafix_pds::{poststar, prestar};
use getafix_workloads::{driver, regression_suite, terminator_suite, DriverSpec};

/// Runs all engines on a case and asserts unanimity with the expectation.
fn all_engines_agree(name: &str, program: &getafix_boolprog::Program, label: &str, expect: bool) {
    let cfg = Cfg::build(program).unwrap_or_else(|e| panic!("{name}: {e}"));
    let pc = cfg.label(label).unwrap_or_else(|| panic!("{name}: no {label}"));

    let oracle = explicit_reachable(&cfg, &[pc], 10_000_000)
        .unwrap_or_else(|e| panic!("{name} oracle: {e}"))
        .reachable;
    assert_eq!(oracle, expect, "{name}: oracle vs construction");

    for algo in Algorithm::ALL {
        let r =
            check_reachability(&cfg, &[pc], algo).unwrap_or_else(|e| panic!("{name} {algo}: {e}"));
        assert_eq!(r.reachable, expect, "{name} ({algo})");
    }
    assert_eq!(poststar(&cfg, &[pc]).unwrap().reachable, expect, "{name} (post*)");
    assert_eq!(prestar(&cfg, &[pc]).unwrap().reachable, expect, "{name} (pre*)");
    assert_eq!(bebop_reachable(&cfg, &[pc]).unwrap().reachable, expect, "{name} (bebop)");
}

#[test]
fn regression_sample_unanimous() {
    // Every 8th case of each half keeps debug-mode runtime reasonable while
    // covering every feature template family.
    let (pos, neg) = regression_suite();
    for c in pos.iter().step_by(8).chain(neg.iter().step_by(8)) {
        all_engines_agree(&c.name, &c.program, &c.label, c.expect_reachable);
    }
}

#[test]
fn terminator_small_unanimous() {
    for c in terminator_suite(3) {
        all_engines_agree(&c.name, &c.program, &c.label, c.expect_reachable);
    }
}

#[test]
fn driver_small_unanimous() {
    for positive in [true, false] {
        let c = driver(
            if positive { "pos" } else { "neg" },
            DriverSpec { handlers: 3, globals: 3, locals: 4, filler: 3, positive, seed: 0x1517 },
        );
        all_engines_agree(&c.name, &c.program, &c.label, c.expect_reachable);
    }
}

#[test]
fn ef_summary_sizes_match_theorem2() {
    // Theorem 2 / Theorem 3: EF and EF-opt compute the same summary set,
    // so on an unreachable target (no early termination) their final BDD
    // node counts must coincide.
    let c = driver(
        "sizes",
        DriverSpec { handlers: 3, globals: 2, locals: 3, filler: 2, positive: false, seed: 9 },
    );
    let cfg = Cfg::build(&c.program).unwrap();
    let pc = cfg.label(&c.label).unwrap();
    let ef = check_reachability(&cfg, &[pc], Algorithm::EntryForward).unwrap();
    let efo = check_reachability(&cfg, &[pc], Algorithm::EntryForwardOpt).unwrap();
    assert!(!ef.reachable && !efo.reachable);
    assert_eq!(
        ef.summary_nodes, efo.summary_nodes,
        "EF and EF-opt summary BDDs must be identical on completion"
    );
}

#[test]
fn emitted_formulae_reparse() {
    // The "page of formulae" pretty-printing round-trips through the
    // mu-calculus parser for every algorithm.
    let c = driver(
        "emit",
        DriverSpec { handlers: 2, globals: 2, locals: 2, filler: 1, positive: true, seed: 4 },
    );
    let cfg = Cfg::build(&c.program).unwrap();
    for algo in Algorithm::ALL {
        let sys = getafix_core::emit_system(&cfg, algo).unwrap();
        let printed = sys.to_string();
        let reparsed = getafix_mucalc::parse_system(&printed)
            .unwrap_or_else(|e| panic!("{algo}: {e}\n{printed}"));
        assert_eq!(printed, reparsed.to_string(), "{algo}: print∘parse∘print stable");
    }
}
