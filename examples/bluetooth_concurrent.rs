//! The Figure 3 experiment in miniature: bounded context-switching
//! reachability on the Bluetooth driver model, sweeping the switch bound
//! for each thread configuration.
//!
//! Run with: `cargo run --release --example bluetooth_concurrent`

use getafix::conc::{check_merged, merge};
use getafix::workloads::{adder_err_label, bluetooth, FIGURE3_CONFIGS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Context  Reachable  Reach set   Time");
    println!("switches            size (tuples)");
    for &(name, adders, stoppers) in &FIGURE3_CONFIGS {
        let conc = bluetooth(adders, stoppers);
        let merged = merge(&conc)?;
        let locals: usize = merged.cfg.procs.iter().map(|p| p.n_locals()).sum();
        println!(
            "\n{} processes: {name}\n({} thread-local variables and {} shared variables)",
            adders + stoppers,
            locals,
            merged.cfg.globals.len()
        );
        let targets: Vec<_> =
            (0..adders).map(|i| merged.cfg.label(&adder_err_label(i)).expect("ERR")).collect();
        for k in 1..=4 {
            let r = check_merged(&merged, &targets, k)?;
            println!(
                "   {k}      {}       {:>9.1}k   {:.2}s",
                if r.reachable { "Yes" } else { "No " },
                r.reach_tuples / 1e3,
                r.solve_time.as_secs_f64()
            );
        }
    }
    Ok(())
}
