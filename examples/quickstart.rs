//! Quickstart: check reachability in a recursive Boolean program with the
//! optimized entry-forward algorithm (§4.3 of the paper).
//!
//! Run with: `cargo run --example quickstart`

use getafix::prelude::*;

const PROGRAM: &str = r#"
decl locked;

main() begin
  decl request;
  while (*) do
    request := *;
    if (request) then
      call acquire();
      call work();
      call release();
    fi;
  od;
end

acquire() begin
  if (locked) then
    DOUBLE_LOCK: skip;
  fi;
  locked := T;
end

release() begin
  locked := F;
end

work() begin
  /* A buggy path re-acquires the lock while holding it. */
  if (*) then
    call acquire();
  fi;
end
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(PROGRAM)?;
    let cfg = Cfg::build(&program)?;

    println!(
        "Program: {} procedures, {} pcs, {} globals",
        cfg.procs.len(),
        cfg.pc_count,
        cfg.globals.len()
    );

    // Every algorithm of §4 answers the same question; EF-opt is the one
    // the paper's evaluation leads with.
    for algo in Algorithm::ALL {
        let r = check_label(&cfg, "DOUBLE_LOCK", algo)?;
        println!(
            "  {algo:<12} -> {}   ({} summary nodes, {} iterations, {:.1}ms)",
            if r.reachable { "REACHABLE" } else { "unreachable" },
            r.summary_nodes,
            r.iterations,
            r.solve_time.as_secs_f64() * 1e3,
        );
    }

    // Cross-check against the explicit-state oracle.
    let oracle = explicit_reachable_label(&cfg, "DOUBLE_LOCK", 1_000_000)?.expect("label");
    println!("  oracle       -> {}", if oracle.reachable { "REACHABLE" } else { "unreachable" });
    Ok(())
}
