//! The fixed-point calculus as a programming language — the paper's core
//! idea, shown two ways:
//!
//! 1. the §3 finite-state reachability formula, written in the MUCKE-like
//!    concrete syntax and solved directly;
//! 2. the §4.2 entry-forward algorithm for a real Boolean program, *printed
//!    as the page of formulae* the paper advertises, then executed.
//!
//! Run with: `cargo run --example fixed_point_calculus`

use getafix::mucalc::{eq_const, parse_system, Solver};
use getafix::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: a transition system in five lines of calculus. -----------
    let system = parse_system(
        r#"
        type State = bits 3;
        input Init(s: State);
        input Trans(s: State, t: State);
        mu Reach(u: State) :=
            Init(u) | (exists x: State. Reach(x) & Trans(x, u));
        query hits_seven := exists u: State. Reach(u) & u = 7;
        "#,
    )?;
    let mut solver = Solver::new(system)?;
    // Init = {0}; Trans doubles-or-increments modulo 8.
    let init = {
        let vars = solver.alloc().formal("Init", 0).all_vars();
        let m = solver.manager();
        eq_const(m, &vars, 0)
    };
    solver.set_input("Init", init)?;
    let trans = {
        let s = solver.alloc().formal("Trans", 0).all_vars();
        let t = solver.alloc().formal("Trans", 1).all_vars();
        let m = solver.manager();
        let mut acc = m.constant(false);
        for v in 0u64..8 {
            for w in [(2 * v) % 8, (v + 1) % 8] {
                let a = eq_const(m, &s, v);
                let b = eq_const(m, &t, w);
                let edge = m.and(a, b);
                acc = m.or(acc, edge);
            }
        }
        acc
    };
    solver.set_input("Trans", trans)?;
    println!("§3 example: state 7 reachable? {}\n", solver.eval_query("hits_seven")?);

    // --- Part 2: the entry-forward algorithm as one page of formulae. -----
    let program = parse_program(
        r#"
        decl g;
        main() begin
          decl x;
          x := *;
          g := f(x);
          if (g) then HIT: skip; fi;
        end
        f(a) returns 1 begin
          return !a;
        end
        "#,
    )?;
    let cfg = Cfg::build(&program)?;
    let system = emit_system(&cfg, Algorithm::EntryForward)?;
    println!("The §4.2 entry-forward algorithm, generated for this program:");
    println!("----------------------------------------------------------------");
    print!("{system}");
    println!("----------------------------------------------------------------");
    let r = check_label(&cfg, "HIT", Algorithm::EntryForward)?;
    println!("Executing it: HIT is {}", if r.reachable { "REACHABLE" } else { "unreachable" });
    Ok(())
}
