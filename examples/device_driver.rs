//! Device-driver scenario: generate a SLAM-shaped Boolean driver model and
//! compare every engine in the workspace on it — the Figure 2 experiment in
//! miniature.
//!
//! Run with: `cargo run --release --example device_driver`

use getafix::prelude::*;
use getafix::workloads::{driver, DriverSpec};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for positive in [true, false] {
        let case = driver(
            if positive { "demo-buggy" } else { "demo-correct" },
            DriverSpec { handlers: 5, globals: 4, locals: 6, filler: 4, positive, seed: 0xD61F },
        );
        let md = case.program.metadata();
        println!(
            "== {} ({} LOC, {} procedures, {} globals, {} locals max) ==",
            case.name,
            case.program.loc(),
            md.procedures,
            md.globals,
            md.max_locals
        );
        let cfg = Cfg::build(&case.program)?;
        let pc = cfg.label(&case.label).expect("ERR label");

        // The formula-driven algorithms (Getafix).
        for algo in [Algorithm::EntryForward, Algorithm::EntryForwardOpt] {
            let r = check_reachability(&cfg, &[pc], algo)?;
            report(&format!("getafix {algo}"), r.reachable, r.solve_time.as_secs_f64());
        }
        // The hand-coded baselines.
        let t = Instant::now();
        let r = bebop_reachable(&cfg, &[pc])?;
        report("bebop (worklist)", r.reachable, t.elapsed().as_secs_f64());
        let r = poststar(&cfg, &[pc])?;
        report("moped-fwd (post*)", r.reachable, r.time.as_secs_f64());
        let r = prestar(&cfg, &[pc])?;
        report("moped-bwd (pre*)", r.reachable, r.time.as_secs_f64());
        // Ground truth.
        let r = explicit_reachable(&cfg, &[pc], 50_000_000)?;
        report("explicit oracle", r.reachable, f64::NAN);
        assert_eq!(r.reachable, case.expect_reachable, "oracle matches construction");
        println!();
    }
    Ok(())
}

fn report(name: &str, reachable: bool, secs: f64) {
    let verdict = if reachable { "REACHABLE" } else { "unreachable" };
    if secs.is_nan() {
        println!("  {name:<22} {verdict}");
    } else {
        println!("  {name:<22} {verdict}   ({:.1}ms)", secs * 1e3);
    }
}
